// Command cabbench regenerates the paper's tables and figures on the
// simulated Opteron 8380 testbed.
//
// Usage:
//
//	cabbench [-exp id[,id...]] [-scale f] [-seed n] [-verify] [-list] [-rtbench] [-par] [-chaos] [-profile]
//
// With no -exp it runs every experiment in presentation order. Experiment
// IDs follow the paper: tab3, fig4, tab4, fig5, fig6, fig7, fig8, plus
// tier, flat, share, bounds and abl for the claims outside numbered
// artifacts.
//
// -rtbench instead runs the real-runtime fast-path microbenchmarks
// (spawn/sync, steal throughput, inter-socket pool, job throughput; see
// internal/rtbench) and exits — the numbers EXPERIMENTS.md's "Runtime fast
// path" section and scripts/bench.sh track.
//
// -loadgen runs the multi-job load generator: -submitters goroutines each
// Submit -jobs fork-join jobs of -width leaves through one shared
// Scheduler and wait on the futures; it reports jobs/sec and the service
// counters, the end-to-end figure for the jobs subsystem.
//
// -par runs the data-parallel subsystem smoke: against one live Scheduler
// at BL 1 it executes a cab.ParallelFor saxpy, a cab.Reduce sum checked
// against the closed form, the data-parallel sample sort and the
// squad-affine hash join (both verified against serial references), and
// prints timings plus scheduler counters as JSON, exiting 1 on any
// mismatch — the CI smoke for internal/par and the data-parallel
// workloads.
//
// -chaos runs the fault-tolerance smoke: against one live Scheduler with a
// fast watchdog it freezes a worker mid-task (asserting the watchdog flags
// it, DumpState names it, and the job drains after thaw), forces a panic
// in an inter-socket-tier task (asserting it surfaces from Wait and the
// squad stays adoptable), and submits a deadline-doomed job (asserting
// ErrDeadlineExceeded). It prints the resulting health counters as JSON to
// stdout and exits 1 if any scenario misbehaves — the CI smoke for the
// robustness layer.
//
// -profile runs the scheduler X-ray smoke: fib on a live 2x2 squad
// machine at BL 1 with time-in-state and steal-flow accounting (and
// hardware counters where the host permits) armed from construction. It
// prints the profile roll-up as JSON and exits 1 unless the books
// balance: non-zero exec time, and the flow matrix's probe/hit/frame
// sums equal to the scheduler's own steal counters — the CI gate for the
// profiling layer.
//
// -trace out.json runs fib(-tracefib) on the real runtime with event
// tracing armed on a 2-socket squad machine (BL 2) and writes the window
// as Chrome trace-viewer JSON — load it in chrome://tracing or
// https://ui.perfetto.dev to see workers as lanes grouped by socket. It
// composes with -rtbench: the traced run happens first, then the
// microbenchmarks.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cab"
	"cab/internal/chaos"
	"cab/internal/exp"
	"cab/internal/rtbench"
	"cab/internal/workloads"
)

func main() {
	var (
		ids    = flag.String("exp", "", "comma-separated experiment IDs (default: all)")
		scale  = flag.Float64("scale", 1.0, "input scale; 1.0 = the paper's sizes")
		seed   = flag.Uint64("seed", 42, "simulation seed")
		verify = flag.Bool("verify", false, "verify workload results against serial references")
		list   = flag.Bool("list", false, "list experiments and exit")
		rtb    = flag.Bool("rtbench", false, "run the real-runtime fast-path microbenchmarks and exit")

		loadgen    = flag.Bool("loadgen", false, "run the multi-job throughput load generator and exit")
		submitters = flag.Int("submitters", 64, "loadgen: concurrent submitter goroutines")
		jobs       = flag.Int("jobs", 200, "loadgen: jobs per submitter")
		width      = flag.Int("width", 8, "loadgen: leaves spawned per job")
		queue      = flag.Int("queue", 256, "loadgen: admission queue depth")

		trace    = flag.String("trace", "", "write a Chrome trace of a traced fib run to this file")
		tracefib = flag.Int("tracefib", 30, "trace: the fib argument of the traced run")

		chaosSmoke = flag.Bool("chaos", false, "run the fault-injection smoke scenarios and exit")
		parSmoke   = flag.Bool("par", false, "run the data-parallel subsystem smoke (ParallelFor/Reduce/samplesort/hash join) and exit")
		profSmoke  = flag.Bool("profile", false, "run the scheduler X-ray smoke (time-in-state, steal flow, hwc) and exit")

		soak        = flag.Bool("soak", false, "run the randomized chaos-soak harness and exit")
		soakSeconds = flag.Int("seconds", 30, "soak: wall-clock duration in seconds")
	)
	flag.Parse()

	if *soak {
		runSoak(*soakSeconds, *seed)
		return
	}

	if *profSmoke {
		runProfile()
		return
	}

	if *parSmoke {
		runPar()
		return
	}

	if *chaosSmoke {
		runChaos()
		return
	}

	if *trace != "" {
		runTrace(*trace, *tracefib)
	}
	if *rtb {
		runRTBench()
		return
	}
	if *trace != "" {
		return
	}
	if *loadgen {
		runLoadgen(*submitters, *jobs, *width, *queue)
		return
	}

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-6s %s\n       paper: %s\n", e.ID, e.Title, e.Paper)
		}
		return
	}

	var selected []exp.Experiment
	if *ids == "" {
		selected = exp.All()
	} else {
		for _, id := range strings.Split(*ids, ",") {
			e, ok := exp.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "cabbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	params := exp.Params{Scale: *scale, Seed: *seed, Verify: *verify}
	for _, e := range selected {
		fmt.Printf("== %s: %s\n", e.ID, e.Title)
		fmt.Printf("   paper: %s\n", e.Paper)
		start := time.Now()
		res, err := e.Run(params)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cabbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		for _, t := range res.Tables {
			fmt.Println()
			fmt.Print(t.String())
		}
		fmt.Printf("\n   key values:\n")
		for _, name := range res.SortedValueNames() {
			fmt.Printf("     %-28s %.4g\n", name, res.Values[name])
		}
		fmt.Printf("   (%s, scale %.2g)\n\n", time.Since(start).Round(time.Millisecond), *scale)
	}
}

// runTrace runs fib(n) with event tracing armed on a 2-socket squad
// machine at BL 2 — deep enough that the top of the tree distributes
// across squads while the sub-trees stay cache-confined — and writes the
// trace window to path as Chrome trace-viewer JSON.
func runTrace(path string, n int) {
	sched, err := cab.New(cab.Config{
		Machine:       cab.Machine{Sockets: 2, CoresPerSocket: 2, SharedCache: 1 << 20},
		BoundaryLevel: 2,
		Trace:         true,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "cabbench: %v\n", err)
		os.Exit(1)
	}
	defer sched.Close()
	var fib func(n int) cab.TaskFunc
	fib = func(n int) cab.TaskFunc {
		return func(t cab.Task) {
			if n < 16 {
				serialFib(n)
				return
			}
			t.Spawn(fib(n - 1))
			t.Spawn(fib(n - 2))
			t.Sync()
		}
	}
	start := time.Now()
	if err := sched.Run(fib(n)); err != nil {
		fmt.Fprintf(os.Stderr, "cabbench: trace run: %v\n", err)
		os.Exit(1)
	}
	el := time.Since(start)
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cabbench: %v\n", err)
		os.Exit(1)
	}
	if err := sched.StopTrace(f); err != nil {
		fmt.Fprintf(os.Stderr, "cabbench: writing trace: %v\n", err)
		os.Exit(1)
	}
	info, _ := f.Stat()
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "cabbench: %v\n", err)
		os.Exit(1)
	}
	st := sched.Stats()
	fmt.Printf("== trace: fib(%d) on 2x2 squads, BL %d, %s\n", n, sched.BoundaryLevel(), el.Round(time.Millisecond))
	fmt.Printf("   %s: %d bytes (load in chrome://tracing or ui.perfetto.dev)\n", path, info.Size())
	fmt.Printf("   spawns %d, steals intra %d / inter %d, helps %d\n",
		st.Spawns, st.StealsIntra, st.StealsInter, st.Helps)
}

// serialFib is the sequential cutoff of the traced fib run.
func serialFib(n int) int64 {
	if n < 2 {
		return int64(n)
	}
	a, b := int64(0), int64(1)
	for i := 2; i <= n; i++ {
		a, b = b, a+b
	}
	return b
}

// runRTBench executes the internal/rtbench bodies through testing.Benchmark
// so cabbench reports the same numbers as `go test -bench` without needing
// the test binary.
func runRTBench() {
	fmt.Println("== rt: real-runtime fast-path microbenchmarks")
	for _, mb := range []struct {
		name string
		fn   func(*testing.B)
	}{
		{"SpawnSync", rtbench.SpawnSync},
		{"SpawnSyncTraced", rtbench.SpawnSyncTraced},
		{"SpawnSyncFaultHook", rtbench.SpawnSyncFaultHook},
		{"SpawnSyncSupervised", rtbench.SpawnSyncSupervised},
		{"StealThroughput", rtbench.StealThroughput},
		{"StealBatchTiered", rtbench.StealBatchTiered},
		{"InterPool", rtbench.InterPool},
		{"JobThroughput", rtbench.JobThroughput},
		{"JobSubmit", rtbench.JobSubmit},
		{"SubmitBatchLatency", rtbench.SubmitBatchLatency},
		{"ParallelFor", rtbench.ParallelFor},
		{"ParallelForFine", rtbench.ParallelForFine},
		{"ParallelForCoarse", rtbench.ParallelForCoarse},
		{"Samplesort", rtbench.Samplesort},
		{"HashJoin", rtbench.HashJoin},
	} {
		res := testing.Benchmark(mb.fn)
		fmt.Printf("   %-16s %10d iters %12.1f ns/op %8d B/op %6d allocs/op",
			mb.name, res.N, float64(res.T.Nanoseconds())/float64(res.N),
			res.AllocedBytesPerOp(), res.AllocsPerOp())
		for _, unit := range []string{"steals/op", "tasks/op", "jobs/sec",
			"intersteals/op", "tasks/steal", "jobs/op",
			"ns/elem", "speedup_vs_sortslice", "keys/sec", "tuples/sec"} {
			if v, ok := res.Extra[unit]; ok {
				fmt.Printf(" %10.1f %s", v, unit)
			}
		}
		fmt.Println()
	}
}

// parFail prints a data-parallel smoke failure and exits non-zero.
func parFail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "cabbench: par: "+format+"\n", args...)
	os.Exit(1)
}

// runPar is the data-parallel subsystem smoke: against one Scheduler on a
// 2x2 squad machine at BL 1 it runs a cab.ParallelFor saxpy, a cab.Reduce
// sum (checked against the closed form), the sample sort and the
// squad-affine hash join (both self-verifying), then prints the timings
// and scheduler counters as JSON — the CI gate for the subsystem.
func runPar() {
	sched, err := cab.New(cab.Config{
		Machine:       cab.Machine{Sockets: 2, CoresPerSocket: 2, SharedCache: 1 << 20},
		BoundaryLevel: 1,
	})
	if err != nil {
		parFail("%v", err)
	}
	defer sched.Close()
	ctx := context.Background()

	const n = 1 << 20
	data := make([]float64, n)
	for i := range data {
		data[i] = float64(i)
	}
	t0 := time.Now()
	if err := sched.ParallelFor(ctx, 0, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			data[i] = 2*data[i] + 1
		}
	}, cab.WithElemBytes(8)); err != nil {
		parFail("ParallelFor: %v", err)
	}
	forMS := float64(time.Since(t0).Microseconds()) / 1000

	t0 = time.Now()
	sum, err := cab.Reduce(sched, ctx, 0, n,
		func(lo, hi int) float64 {
			var s float64
			for i := lo; i < hi; i++ {
				s += data[i]
			}
			return s
		},
		func(a, b float64) float64 { return a + b },
		cab.WithElemBytes(8))
	if err != nil {
		parFail("Reduce: %v", err)
	}
	reduceMS := float64(time.Since(t0).Microseconds()) / 1000
	// data[i] = 2i+1, so the sum is n^2 exactly (float64-exact at this n).
	if want := float64(n) * float64(n); sum != want {
		parFail("Reduce sum = %v, want %v", sum, want)
	}

	const sortN = 200_000
	s := workloads.NewSamplesort(sortN)
	t0 = time.Now()
	if err := sched.Run(s.Root()); err != nil {
		parFail("samplesort: %v", err)
	}
	sortMS := float64(time.Since(t0).Microseconds()) / 1000
	if err := s.Verify(); err != nil {
		parFail("samplesort: %v", err)
	}

	h := workloads.NewHashJoin(100_000, 200_000, 32, workloads.JoinAffine)
	t0 = time.Now()
	if err := sched.Run(h.Root()); err != nil {
		parFail("hash join: %v", err)
	}
	joinMS := float64(time.Since(t0).Microseconds()) / 1000
	if err := h.Verify(); err != nil {
		parFail("hash join: %v", err)
	}

	st := sched.Stats()
	out := struct {
		ForN        int     `json:"parallel_for_n"`
		ForMS       float64 `json:"parallel_for_ms"`
		ReduceMS    float64 `json:"reduce_ms"`
		ReduceSum   float64 `json:"reduce_sum"`
		SortN       int     `json:"sort_n"`
		SortMS      float64 `json:"sort_ms"`
		JoinProbes  int     `json:"join_probes"`
		JoinMS      float64 `json:"join_ms"`
		JoinResult  int64   `json:"join_result"`
		Spawns      int64   `json:"spawns"`
		StealsIntra int64   `json:"steals_intra"`
		StealsInter int64   `json:"steals_inter"`
		OK          bool    `json:"ok"`
	}{n, forMS, reduceMS, sum, sortN, sortMS, h.NProbe, joinMS, h.Result(), st.Spawns, st.StealsIntra, st.StealsInter, true}
	if out.Spawns == 0 || out.JoinResult <= 0 {
		parFail("suspicious counters: %+v", out)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		parFail("%v", err)
	}
}

// profFail prints a profile smoke failure and exits non-zero.
func profFail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "cabbench: profile: "+format+"\n", args...)
	os.Exit(1)
}

// runProfile is the scheduler X-ray smoke: fib on a 2x2 squad machine at
// BL 1 with profiling (and hardware counters, where the host grants
// them) armed from construction, then a books-balance check — the flow
// matrix's probe/hit/frame sums must equal the scheduler's own steal
// counters exactly, and real work must show up as exec time. Emits the
// roll-up as JSON on stdout; any imbalance exits 1.
func runProfile() {
	sched, err := cab.New(cab.Config{
		Machine:       cab.Machine{Sockets: 2, CoresPerSocket: 2, SharedCache: 1 << 20},
		BoundaryLevel: 1,
		Profile:       true,
		HWC:           true,
	})
	if err != nil {
		profFail("%v", err)
	}
	defer sched.Close()

	// Fork-join fib with yielding leaves: the yields give thieves a
	// chance even when GOMAXPROCS or the core count is small, so the flow
	// matrix is populated on any host.
	var fib func(n int) cab.TaskFunc
	fib = func(n int) cab.TaskFunc {
		return func(t cab.Task) {
			if n < 2 {
				runtime.Gosched()
				return
			}
			t.Spawn(fib(n - 1))
			t.Spawn(fib(n - 2))
			t.Sync()
		}
	}
	start := time.Now()
	if err := sched.Run(fib(22)); err != nil {
		profFail("fib run: %v", err)
	}
	wallMS := float64(time.Since(start).Microseconds()) / 1000

	p := sched.Profile()
	st := sched.Stats()
	if !p.Enabled {
		profFail("profiling not armed despite Config.Profile")
	}

	var times cab.StateTimes
	squadExecMS := make([]float64, len(p.Squads))
	for i, sq := range p.Squads {
		times.Exec += sq.Times.Exec
		times.ScanIntra += sq.Times.ScanIntra
		times.ScanInter += sq.Times.ScanInter
		times.Park += sq.Times.Park
		times.AdmitWait += sq.Times.AdmitWait
		squadExecMS[i] = float64(sq.Times.Exec.Microseconds()) / 1000
	}
	var probes, hits, frames int64
	for _, row := range p.Flow {
		for _, c := range row {
			probes += c.Probes
			hits += c.Hits
			frames += c.Frames
		}
	}

	out := struct {
		FibN        int       `json:"fib_n"`
		WallMS      float64   `json:"wall_ms"`
		ExecMS      float64   `json:"exec_ms"`
		ScanIntraMS float64   `json:"scan_intra_ms"`
		ScanInterMS float64   `json:"scan_inter_ms"`
		ParkMS      float64   `json:"park_ms"`
		SquadExecMS []float64 `json:"squad_exec_ms"`
		FlowProbes  int64     `json:"flow_probes"`
		FlowHits    int64     `json:"flow_hits"`
		FlowFrames  int64     `json:"flow_frames"`
		StealsIntra int64     `json:"steals_intra"`
		StealsInter int64     `json:"steals_inter"`
		HWC         bool      `json:"hwc_available"`
		OK          bool      `json:"ok"`
	}{
		22, wallMS,
		float64(times.Exec.Microseconds()) / 1000,
		float64(times.ScanIntra.Microseconds()) / 1000,
		float64(times.ScanInter.Microseconds()) / 1000,
		float64(times.Park.Microseconds()) / 1000,
		squadExecMS, probes, hits, frames,
		st.StealsIntra, st.StealsInter, p.HWCAvailable, true,
	}
	if times.Exec <= 0 {
		profFail("no exec time accounted over a fib run: %+v", out)
	}
	if times.Total() <= 0 {
		profFail("total state time is zero: %+v", out)
	}
	if probes != st.ProbesIntra+st.ProbesInter {
		profFail("flow probes %d != ProbesIntra %d + ProbesInter %d",
			probes, st.ProbesIntra, st.ProbesInter)
	}
	if hits != st.StealsIntra+st.StealsInter {
		profFail("flow hits %d != StealsIntra %d + StealsInter %d",
			hits, st.StealsIntra, st.StealsInter)
	}
	if frames != st.StealsIntra+st.StealsInterTasks {
		profFail("flow frames %d != StealsIntra %d + StealsInterTasks %d",
			frames, st.StealsIntra, st.StealsInterTasks)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		profFail("%v", err)
	}
}

// chaosFail prints a smoke failure and exits non-zero.
func chaosFail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "cabbench: chaos: "+format+"\n", args...)
	os.Exit(1)
}

// runChaos is the fault-tolerance smoke test: frozen worker, forced
// inter-tier panic, and a doomed deadline, all against one Scheduler with
// a fast watchdog. It emits the final health counters as JSON on stdout
// and exits 1 on any deviation.
func runChaos() {
	inj := chaos.New(42)
	sched, err := cab.New(cab.Config{
		Machine:       cab.Machine{Sockets: 2, CoresPerSocket: 2, SharedCache: 1 << 20},
		BoundaryLevel: 1,
		FaultHook:     inj.Hook,
		Watchdog: cab.WatchdogConfig{
			Interval: 5 * time.Millisecond, StallAfter: 25 * time.Millisecond,
			Output: os.Stderr,
		},
	})
	if err != nil {
		chaosFail("%v", err)
	}
	defer sched.Close()
	defer inj.UnfreezeAll() // never leave a frozen worker for Close to wait on

	// Scenario 1: freeze worker 1 mid-task-body. The root streams leaves
	// until the freeze is entered (a fixed fanout could drain on the other
	// workers), the watchdog must flag the stall, DumpState must name the
	// worker, and after the thaw the job drains cleanly.
	const frozenWorker = 1
	entered := inj.FreezeWorker(frozenWorker, cab.FaultExec)
	// Two-level stream: at BL 1 the level-1 branches are inter-tier (head
	// workers only), but their level-2 leaves are intra-tier and stealable
	// by every worker — including the one under the freeze gate.
	branch := func(p cab.Task) {
		for k := 0; k < 4; k++ {
			p.Spawn(func(cab.Task) { time.Sleep(20 * time.Microsecond) })
		}
		p.Sync()
	}
	j, err := sched.Submit(context.Background(), func(p cab.Task) {
		for i := 0; ; i++ {
			select {
			case <-entered:
				p.Sync()
				return
			default:
			}
			p.Spawn(branch)
			if i%8 == 7 {
				p.Sync()
			}
		}
	})
	if err != nil {
		chaosFail("freeze job submit: %v", err)
	}
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		chaosFail("worker %d never hit the freeze gate", frozenWorker)
	}
	deadline := time.Now().Add(10 * time.Second)
	for sched.Health().StalledWorkers == 0 {
		if time.Now().After(deadline) {
			chaosFail("watchdog never flagged the frozen worker")
		}
		time.Sleep(time.Millisecond)
	}
	var dump bytes.Buffer
	sched.DumpState(&dump)
	if want := fmt.Sprintf("worker %d", frozenWorker); !strings.Contains(dump.String(), want+" (") ||
		!strings.Contains(dump.String(), "STALLED") {
		chaosFail("DumpState does not name the frozen worker:\n%s", dump.String())
	}
	inj.Unfreeze(frozenWorker)
	if err := j.Wait(); err != nil {
		chaosFail("frozen job after thaw: %v", err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for sched.Health().StalledWorkers != 0 {
		if time.Now().After(deadline) {
			chaosFail("stall never recovered after thaw")
		}
		time.Sleep(time.Millisecond)
	}

	// Scenario 2: one-shot forced panic in an inter-socket-tier task
	// (level 1 at BL 1). It must surface from Wait as the injected value,
	// and the next job must run clean — the squad's busy state came back.
	inj.PanicNext(chaos.Match{Worker: chaos.Any, Level: 1, Tier: 1})
	j, err = sched.Submit(context.Background(), func(p cab.Task) {
		for i := 0; i < 8; i++ {
			p.Spawn(func(cab.Task) {})
		}
		p.Sync()
	})
	if err != nil {
		chaosFail("panic job submit: %v", err)
	}
	werr := j.Wait()
	if werr == nil || !strings.Contains(werr.Error(), "chaos: injected panic") {
		chaosFail("panic job Wait = %v, want the injected panic", werr)
	}
	if err := sched.Run(func(p cab.Task) {
		for i := 0; i < 8; i++ {
			p.Spawn(func(cab.Task) {})
		}
		p.Sync()
	}); err != nil {
		chaosFail("job after injected panic: %v", err)
	}

	// Scenario 3: a 20ms deadline on an unbounded DAG must come back as
	// ErrDeadlineExceeded, promptly.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	var spin func(p cab.Task)
	spin = func(p cab.Task) {
		p.Spawn(spin)
		p.Sync()
	}
	j, err = sched.Submit(ctx, spin)
	if err != nil {
		chaosFail("deadline job submit: %v", err)
	}
	if werr := j.Wait(); !errors.Is(werr, cab.ErrDeadlineExceeded) {
		chaosFail("deadline job Wait = %v, want ErrDeadlineExceeded", werr)
	}

	h := sched.Health()
	st := inj.Stats()
	out := struct {
		Stalls          int64 `json:"watchdog_stalls"`
		StallsRecovered int64 `json:"watchdog_stalls_recovered"`
		DeadlineCancels int64 `json:"watchdog_deadline_cancels"`
		Freezes         int64 `json:"injected_freezes"`
		Panics          int64 `json:"injected_panics"`
		OK              bool  `json:"ok"`
	}{h.Stalls, h.StallsRecovered, h.DeadlineCancels, st.Freezes, st.Panics, true}
	if out.Stalls < 1 || out.StallsRecovered < 1 || out.Freezes < 1 || out.Panics != 1 {
		chaosFail("watchdog/injector counters not exercised: %+v", out)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		chaosFail("%v", err)
	}
}

// runLoadgen drives the jobs subsystem end to end through the public API:
// `submitters` goroutines each submit `jobs` fork-join jobs of `width`
// leaves and wait on the futures, all against one shared Scheduler.
func runLoadgen(submitters, jobs, width, queue int) {
	sched, err := cab.New(cab.Config{QueueDepth: queue})
	if err != nil {
		fmt.Fprintf(os.Stderr, "cabbench: %v\n", err)
		os.Exit(1)
	}
	defer sched.Close()
	total := submitters * jobs
	fmt.Printf("== loadgen: %d submitters x %d jobs x %d leaves (queue %d, BL %d)\n",
		submitters, jobs, width, queue, sched.BoundaryLevel())
	body := func(p cab.Task) {
		for i := 0; i < width; i++ {
			p.Spawn(func(cab.Task) {})
		}
		p.Sync()
	}
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, submitters)
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < jobs; i++ {
				j, err := sched.Submit(context.Background(), body)
				if err != nil {
					errs <- err
					return
				}
				if err := j.Wait(); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		fmt.Fprintf(os.Stderr, "cabbench: loadgen: %v\n", err)
		os.Exit(1)
	}
	el := time.Since(start)
	st := sched.ServiceStats()
	fmt.Printf("   %d jobs in %s: %.1f jobs/sec\n", total, el.Round(time.Millisecond), float64(total)/el.Seconds())
	fmt.Printf("   service: submitted %d, completed %d, rejected %d, cancelled %d\n",
		st.Submitted, st.Completed, st.Rejected, st.Cancelled)
}

// soakFail prints a soak failure and exits non-zero.
func soakFail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "cabbench: soak: "+format+"\n", args...)
	os.Exit(1)
}

// soakLedger tracks one logical job through its retries: rootRuns counts
// actual root-body executions (the idempotency ledger), job is the future.
type soakLedger struct {
	rootRuns atomic.Int64
	job      *cab.Job
}

// runSoak is the randomized chaos-soak harness: a sustained mixed
// workload under a seed-deterministic chaos schedule — alternating waves
// freeze a worker past the supervisor's ReplaceAfter (stall-death,
// replacement, zombie thaw) or hard-kill one at its idle poll (exit-death)
// while every task body flakes with small probability into the retry
// layer. Between waves it asserts the self-healing invariants:
//
//   - no job lost: every future resolves within a generous timeout;
//   - no job double-completed: a successful job ran its root at least
//     once and never more often than its admitted attempts;
//   - the steal-flow matrix balances exactly against the scheduler's own
//     steal counters at the quiet point (supervision's frame reclamation
//     must not invent or lose flow);
//   - Health converges back to zero stalled workers after each wave;
//   - quarantine never eats the last healthy squad.
//
// At drain it additionally requires every worker parked and, for runs of
// >= 30 seconds, the acceptance floors: >= 8 kill/freeze events and
// >= 100 injected task panics. Emits a JSON summary and exits 1 on any
// violation. Fully deterministic chaos schedule for a fixed -seed (the
// interleaving itself is real concurrency).
func runSoak(seconds int, seed uint64) {
	inj := chaos.New(seed)
	const flakeProb = 0.002
	inj.FlakeTasks(chaos.MatchAll, flakeProb)
	sched, err := cab.New(cab.Config{
		Machine:       cab.Machine{Sockets: 2, CoresPerSocket: 2, SharedCache: 1 << 20},
		BoundaryLevel: 1,
		Profile:       true,
		QueueDepth:    512,
		FaultHook:     inj.Hook,
		Watchdog: cab.WatchdogConfig{
			Interval: 5 * time.Millisecond, StallAfter: 25 * time.Millisecond,
			Output: os.Stderr,
		},
		Supervisor:  cab.SupervisorConfig{ReplaceAfter: 60 * time.Millisecond},
		Retry:       cab.RetryPolicy{Max: 3, Backoff: 2 * time.Millisecond, Jitter: true},
		RetryBudget: -1,
	})
	if err != nil {
		soakFail("%v", err)
	}
	defer sched.Close()
	defer inj.UnfreezeAll() // never leave a gate armed for Close to wait on

	const (
		workers     = 4
		jobsPerWave = 16
		branches    = 8
		leavesPer   = 8
		freezeHold  = 250 * time.Millisecond
	)
	rng := rand.New(rand.NewSource(int64(seed)))
	start := time.Now()
	deadline := start.Add(time.Duration(seconds) * time.Second)

	var (
		waves, freezes, kills int
		submitted             int
		succeeded, failed     int
	)

	submitWave := func() []*soakLedger {
		ledgers := make([]*soakLedger, 0, jobsPerWave)
		for i := 0; i < jobsPerWave; i++ {
			led := &soakLedger{}
			j, err := sched.Submit(context.Background(), func(p cab.Task) {
				led.rootRuns.Add(1)
				for b := 0; b < branches; b++ {
					p.Spawn(func(p cab.Task) {
						for l := 0; l < leavesPer; l++ {
							p.Spawn(func(cab.Task) { time.Sleep(10 * time.Microsecond) })
						}
						p.Sync()
					})
				}
				p.Sync()
			})
			if err != nil {
				soakFail("wave %d submit: %v", waves, err)
			}
			led.job = j
			ledgers = append(ledgers, led)
			submitted++
		}
		return ledgers
	}

	// checkLedgers is the lost/duplicated-job invariant: every future must
	// resolve (a timeout is a lost job), a success must have run its root,
	// and no job may have run its root more often than it was admitted.
	checkLedgers := func(ledgers []*soakLedger) {
		for i, led := range ledgers {
			select {
			case <-led.job.Done():
			case <-time.After(30 * time.Second):
				soakFail("wave %d job %d never resolved: lost", waves, i)
			}
			err := led.job.Wait()
			runs := led.rootRuns.Load()
			attempts := int64(led.job.Stats().Attempts)
			if runs > attempts {
				soakFail("wave %d job %d root ran %d times over %d attempts: duplicated",
					waves, i, runs, attempts)
			}
			if err == nil {
				if runs < 1 {
					soakFail("wave %d job %d succeeded without running: lost body", waves, i)
				}
				succeeded++
				continue
			}
			var tp *cab.TaskPanic
			if !errors.As(err, &tp) {
				soakFail("wave %d job %d settled with unexpected error: %v", waves, i, err)
			}
			failed++ // flaked through all attempts: settled, not lost
		}
	}

	waitHealthy := func(what string) {
		dl := time.Now().Add(10 * time.Second)
		for {
			h := sched.Health()
			if h.StalledWorkers == 0 {
				return
			}
			if time.Now().After(dl) {
				soakFail("wave %d: health never converged after %s: %d still stalled",
					waves, what, h.StalledWorkers)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// checkFlow asserts the steal-flow matrix balances exactly against the
	// scheduler's steal counters. Between waves the pool quiesces, but a
	// scan can be mid-flight at the first snapshot — retry briefly before
	// declaring the books broken.
	checkFlow := func() {
		dl := time.Now().Add(5 * time.Second)
		for {
			p := sched.Profile()
			st := sched.Stats()
			var probes, hits, frames int64
			for _, row := range p.Flow {
				for _, c := range row {
					probes += c.Probes
					hits += c.Hits
					frames += c.Frames
				}
			}
			if probes == st.ProbesIntra+st.ProbesInter &&
				hits == st.StealsIntra+st.StealsInter &&
				frames == st.StealsIntra+st.StealsInterTasks {
				return
			}
			if time.Now().After(dl) {
				soakFail("wave %d: flow matrix out of balance: probes %d vs %d+%d, hits %d vs %d+%d, frames %d vs %d+%d",
					waves, probes, st.ProbesIntra, st.ProbesInter,
					hits, st.StealsIntra, st.StealsInter,
					frames, st.StealsIntra, st.StealsInterTasks)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	for time.Now().Before(deadline) {
		waves++
		victim := rng.Intn(workers)
		if waves%2 == 0 {
			// Freeze wave: wedge the victim mid-task past ReplaceAfter. The
			// supervisor stall-replaces it; the thaw turns the old
			// incarnation into a zombie that drains its frame and exits.
			entered := inj.FreezeWorker(victim, cab.FaultExec)
			ledgers := submitWave()
			select {
			case <-entered:
				freezes++
				time.Sleep(freezeHold)
			case <-time.After(2 * time.Second):
				// Never took a task (e.g. everything drained elsewhere):
				// release the gate and move on, uncounted.
			}
			inj.Unfreeze(victim)
			checkLedgers(ledgers)
		} else {
			// Kill wave: hard-exit the victim at its next idle poll; the
			// supervisor exit-replaces it.
			killed := inj.KillWorker(victim)
			ledgers := submitWave()
			select {
			case <-killed:
				kills++
			case <-time.After(2 * time.Second):
				// Stays armed; a later poll may still fire it. Uncounted.
			}
			checkLedgers(ledgers)
		}
		waitHealthy("wave")
		checkFlow()
		if q := sched.ServiceStats().QuarantinedSquads; q > 1 {
			soakFail("wave %d: %d squads quarantined, last healthy squad must survive", waves, q)
		}
	}

	// Drain: every future already resolved, so the pool must go fully
	// idle — all workers parked (replacements included; a thawed zombie
	// exits rather than parks).
	parkedDL := time.Now().Add(10 * time.Second)
	for {
		var dump bytes.Buffer
		sched.DumpState(&dump)
		if strings.Count(dump.String(), ": parked beat=") == workers {
			break
		}
		if time.Now().After(parkedDL) {
			soakFail("workers never all parked at drain:\n%s", dump.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	es := sched.ServiceStats()
	ist := inj.Stats()
	if es.Completed != int64(submitted) {
		soakFail("service completed %d of %d submitted: jobs lost or double-counted",
			es.Completed, submitted)
	}
	out := struct {
		Seed        uint64  `json:"seed"`
		Seconds     float64 `json:"wall_seconds"`
		Waves       int     `json:"waves"`
		Jobs        int     `json:"jobs_submitted"`
		Succeeded   int     `json:"jobs_succeeded"`
		Exhausted   int     `json:"jobs_retry_exhausted"`
		Freezes     int     `json:"freeze_events"`
		Kills       int     `json:"kill_events"`
		TaskPanics  int64   `json:"injected_task_panics"`
		Retries     int64   `json:"retries"`
		RetriesExh  int64   `json:"retries_exhausted"`
		Deaths      int64   `json:"worker_deaths"`
		Quarantined int     `json:"quarantined_squads"`
		OK          bool    `json:"ok"`
	}{
		seed, time.Since(start).Seconds(), waves, submitted, succeeded, failed,
		freezes, kills, ist.Panics, es.Retries, es.RetriesExhausted,
		es.WorkerDeaths, es.QuarantinedSquads, true,
	}
	if succeeded+failed != submitted {
		soakFail("ledger mismatch: %d succeeded + %d failed != %d submitted",
			succeeded, failed, submitted)
	}
	if seconds >= 30 {
		if freezes+kills < 8 {
			soakFail("only %d kill/freeze events over %ds, want >= 8 (%+v)", freezes+kills, seconds, out)
		}
		if ist.Panics < 100 {
			soakFail("only %d injected task panics over %ds, want >= 100 (%+v)", ist.Panics, seconds, out)
		}
	} else if freezes+kills == 0 && seconds >= 5 {
		soakFail("no chaos events fired over %ds (%+v)", seconds, out)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		soakFail("%v", err)
	}
}
