// Command cabbench regenerates the paper's tables and figures on the
// simulated Opteron 8380 testbed.
//
// Usage:
//
//	cabbench [-exp id[,id...]] [-scale f] [-seed n] [-verify] [-list] [-rtbench] [-par] [-chaos] [-profile]
//
// With no -exp it runs every experiment in presentation order. Experiment
// IDs follow the paper: tab3, fig4, tab4, fig5, fig6, fig7, fig8, plus
// tier, flat, share, bounds and abl for the claims outside numbered
// artifacts.
//
// -rtbench instead runs the real-runtime fast-path microbenchmarks
// (spawn/sync, steal throughput, inter-socket pool, job throughput; see
// internal/rtbench) and exits — the numbers EXPERIMENTS.md's "Runtime fast
// path" section and scripts/bench.sh track.
//
// -loadgen runs the multi-job load generator: -submitters goroutines each
// Submit -jobs fork-join jobs of -width leaves through one shared
// Scheduler and wait on the futures; it reports jobs/sec and the service
// counters, the end-to-end figure for the jobs subsystem.
//
// -par runs the data-parallel subsystem smoke: against one live Scheduler
// at BL 1 it executes a cab.ParallelFor saxpy, a cab.Reduce sum checked
// against the closed form, the data-parallel sample sort and the
// squad-affine hash join (both verified against serial references), and
// prints timings plus scheduler counters as JSON, exiting 1 on any
// mismatch — the CI smoke for internal/par and the data-parallel
// workloads.
//
// -chaos runs the fault-tolerance smoke: against one live Scheduler with a
// fast watchdog it freezes a worker mid-task (asserting the watchdog flags
// it, DumpState names it, and the job drains after thaw), forces a panic
// in an inter-socket-tier task (asserting it surfaces from Wait and the
// squad stays adoptable), and submits a deadline-doomed job (asserting
// ErrDeadlineExceeded). It prints the resulting health counters as JSON to
// stdout and exits 1 if any scenario misbehaves — the CI smoke for the
// robustness layer.
//
// -profile runs the scheduler X-ray smoke: fib on a live 2x2 squad
// machine at BL 1 with time-in-state and steal-flow accounting (and
// hardware counters where the host permits) armed from construction. It
// prints the profile roll-up as JSON and exits 1 unless the books
// balance: non-zero exec time, and the flow matrix's probe/hit/frame
// sums equal to the scheduler's own steal counters — the CI gate for the
// profiling layer.
//
// -trace out.json runs fib(-tracefib) on the real runtime with event
// tracing armed on a 2-socket squad machine (BL 2) and writes the window
// as Chrome trace-viewer JSON — load it in chrome://tracing or
// https://ui.perfetto.dev to see workers as lanes grouped by socket. It
// composes with -rtbench: the traced run happens first, then the
// microbenchmarks.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"cab"
	"cab/internal/chaos"
	"cab/internal/exp"
	"cab/internal/rtbench"
	"cab/internal/workloads"
)

func main() {
	var (
		ids    = flag.String("exp", "", "comma-separated experiment IDs (default: all)")
		scale  = flag.Float64("scale", 1.0, "input scale; 1.0 = the paper's sizes")
		seed   = flag.Uint64("seed", 42, "simulation seed")
		verify = flag.Bool("verify", false, "verify workload results against serial references")
		list   = flag.Bool("list", false, "list experiments and exit")
		rtb    = flag.Bool("rtbench", false, "run the real-runtime fast-path microbenchmarks and exit")

		loadgen    = flag.Bool("loadgen", false, "run the multi-job throughput load generator and exit")
		submitters = flag.Int("submitters", 64, "loadgen: concurrent submitter goroutines")
		jobs       = flag.Int("jobs", 200, "loadgen: jobs per submitter")
		width      = flag.Int("width", 8, "loadgen: leaves spawned per job")
		queue      = flag.Int("queue", 256, "loadgen: admission queue depth")

		trace    = flag.String("trace", "", "write a Chrome trace of a traced fib run to this file")
		tracefib = flag.Int("tracefib", 30, "trace: the fib argument of the traced run")

		chaosSmoke = flag.Bool("chaos", false, "run the fault-injection smoke scenarios and exit")
		parSmoke   = flag.Bool("par", false, "run the data-parallel subsystem smoke (ParallelFor/Reduce/samplesort/hash join) and exit")
		profSmoke  = flag.Bool("profile", false, "run the scheduler X-ray smoke (time-in-state, steal flow, hwc) and exit")
	)
	flag.Parse()

	if *profSmoke {
		runProfile()
		return
	}

	if *parSmoke {
		runPar()
		return
	}

	if *chaosSmoke {
		runChaos()
		return
	}

	if *trace != "" {
		runTrace(*trace, *tracefib)
	}
	if *rtb {
		runRTBench()
		return
	}
	if *trace != "" {
		return
	}
	if *loadgen {
		runLoadgen(*submitters, *jobs, *width, *queue)
		return
	}

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-6s %s\n       paper: %s\n", e.ID, e.Title, e.Paper)
		}
		return
	}

	var selected []exp.Experiment
	if *ids == "" {
		selected = exp.All()
	} else {
		for _, id := range strings.Split(*ids, ",") {
			e, ok := exp.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "cabbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	params := exp.Params{Scale: *scale, Seed: *seed, Verify: *verify}
	for _, e := range selected {
		fmt.Printf("== %s: %s\n", e.ID, e.Title)
		fmt.Printf("   paper: %s\n", e.Paper)
		start := time.Now()
		res, err := e.Run(params)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cabbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		for _, t := range res.Tables {
			fmt.Println()
			fmt.Print(t.String())
		}
		fmt.Printf("\n   key values:\n")
		for _, name := range res.SortedValueNames() {
			fmt.Printf("     %-28s %.4g\n", name, res.Values[name])
		}
		fmt.Printf("   (%s, scale %.2g)\n\n", time.Since(start).Round(time.Millisecond), *scale)
	}
}

// runTrace runs fib(n) with event tracing armed on a 2-socket squad
// machine at BL 2 — deep enough that the top of the tree distributes
// across squads while the sub-trees stay cache-confined — and writes the
// trace window to path as Chrome trace-viewer JSON.
func runTrace(path string, n int) {
	sched, err := cab.New(cab.Config{
		Machine:       cab.Machine{Sockets: 2, CoresPerSocket: 2, SharedCache: 1 << 20},
		BoundaryLevel: 2,
		Trace:         true,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "cabbench: %v\n", err)
		os.Exit(1)
	}
	defer sched.Close()
	var fib func(n int) cab.TaskFunc
	fib = func(n int) cab.TaskFunc {
		return func(t cab.Task) {
			if n < 16 {
				serialFib(n)
				return
			}
			t.Spawn(fib(n - 1))
			t.Spawn(fib(n - 2))
			t.Sync()
		}
	}
	start := time.Now()
	if err := sched.Run(fib(n)); err != nil {
		fmt.Fprintf(os.Stderr, "cabbench: trace run: %v\n", err)
		os.Exit(1)
	}
	el := time.Since(start)
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cabbench: %v\n", err)
		os.Exit(1)
	}
	if err := sched.StopTrace(f); err != nil {
		fmt.Fprintf(os.Stderr, "cabbench: writing trace: %v\n", err)
		os.Exit(1)
	}
	info, _ := f.Stat()
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "cabbench: %v\n", err)
		os.Exit(1)
	}
	st := sched.Stats()
	fmt.Printf("== trace: fib(%d) on 2x2 squads, BL %d, %s\n", n, sched.BoundaryLevel(), el.Round(time.Millisecond))
	fmt.Printf("   %s: %d bytes (load in chrome://tracing or ui.perfetto.dev)\n", path, info.Size())
	fmt.Printf("   spawns %d, steals intra %d / inter %d, helps %d\n",
		st.Spawns, st.StealsIntra, st.StealsInter, st.Helps)
}

// serialFib is the sequential cutoff of the traced fib run.
func serialFib(n int) int64 {
	if n < 2 {
		return int64(n)
	}
	a, b := int64(0), int64(1)
	for i := 2; i <= n; i++ {
		a, b = b, a+b
	}
	return b
}

// runRTBench executes the internal/rtbench bodies through testing.Benchmark
// so cabbench reports the same numbers as `go test -bench` without needing
// the test binary.
func runRTBench() {
	fmt.Println("== rt: real-runtime fast-path microbenchmarks")
	for _, mb := range []struct {
		name string
		fn   func(*testing.B)
	}{
		{"SpawnSync", rtbench.SpawnSync},
		{"SpawnSyncTraced", rtbench.SpawnSyncTraced},
		{"SpawnSyncFaultHook", rtbench.SpawnSyncFaultHook},
		{"StealThroughput", rtbench.StealThroughput},
		{"StealBatchTiered", rtbench.StealBatchTiered},
		{"InterPool", rtbench.InterPool},
		{"JobThroughput", rtbench.JobThroughput},
		{"JobSubmit", rtbench.JobSubmit},
		{"SubmitBatchLatency", rtbench.SubmitBatchLatency},
		{"ParallelFor", rtbench.ParallelFor},
		{"ParallelForFine", rtbench.ParallelForFine},
		{"ParallelForCoarse", rtbench.ParallelForCoarse},
		{"Samplesort", rtbench.Samplesort},
		{"HashJoin", rtbench.HashJoin},
	} {
		res := testing.Benchmark(mb.fn)
		fmt.Printf("   %-16s %10d iters %12.1f ns/op %8d B/op %6d allocs/op",
			mb.name, res.N, float64(res.T.Nanoseconds())/float64(res.N),
			res.AllocedBytesPerOp(), res.AllocsPerOp())
		for _, unit := range []string{"steals/op", "tasks/op", "jobs/sec",
			"intersteals/op", "tasks/steal", "jobs/op",
			"ns/elem", "speedup_vs_sortslice", "keys/sec", "tuples/sec"} {
			if v, ok := res.Extra[unit]; ok {
				fmt.Printf(" %10.1f %s", v, unit)
			}
		}
		fmt.Println()
	}
}

// parFail prints a data-parallel smoke failure and exits non-zero.
func parFail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "cabbench: par: "+format+"\n", args...)
	os.Exit(1)
}

// runPar is the data-parallel subsystem smoke: against one Scheduler on a
// 2x2 squad machine at BL 1 it runs a cab.ParallelFor saxpy, a cab.Reduce
// sum (checked against the closed form), the sample sort and the
// squad-affine hash join (both self-verifying), then prints the timings
// and scheduler counters as JSON — the CI gate for the subsystem.
func runPar() {
	sched, err := cab.New(cab.Config{
		Machine:       cab.Machine{Sockets: 2, CoresPerSocket: 2, SharedCache: 1 << 20},
		BoundaryLevel: 1,
	})
	if err != nil {
		parFail("%v", err)
	}
	defer sched.Close()
	ctx := context.Background()

	const n = 1 << 20
	data := make([]float64, n)
	for i := range data {
		data[i] = float64(i)
	}
	t0 := time.Now()
	if err := sched.ParallelFor(ctx, 0, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			data[i] = 2*data[i] + 1
		}
	}, cab.WithElemBytes(8)); err != nil {
		parFail("ParallelFor: %v", err)
	}
	forMS := float64(time.Since(t0).Microseconds()) / 1000

	t0 = time.Now()
	sum, err := cab.Reduce(sched, ctx, 0, n,
		func(lo, hi int) float64 {
			var s float64
			for i := lo; i < hi; i++ {
				s += data[i]
			}
			return s
		},
		func(a, b float64) float64 { return a + b },
		cab.WithElemBytes(8))
	if err != nil {
		parFail("Reduce: %v", err)
	}
	reduceMS := float64(time.Since(t0).Microseconds()) / 1000
	// data[i] = 2i+1, so the sum is n^2 exactly (float64-exact at this n).
	if want := float64(n) * float64(n); sum != want {
		parFail("Reduce sum = %v, want %v", sum, want)
	}

	const sortN = 200_000
	s := workloads.NewSamplesort(sortN)
	t0 = time.Now()
	if err := sched.Run(s.Root()); err != nil {
		parFail("samplesort: %v", err)
	}
	sortMS := float64(time.Since(t0).Microseconds()) / 1000
	if err := s.Verify(); err != nil {
		parFail("samplesort: %v", err)
	}

	h := workloads.NewHashJoin(100_000, 200_000, 32, workloads.JoinAffine)
	t0 = time.Now()
	if err := sched.Run(h.Root()); err != nil {
		parFail("hash join: %v", err)
	}
	joinMS := float64(time.Since(t0).Microseconds()) / 1000
	if err := h.Verify(); err != nil {
		parFail("hash join: %v", err)
	}

	st := sched.Stats()
	out := struct {
		ForN        int     `json:"parallel_for_n"`
		ForMS       float64 `json:"parallel_for_ms"`
		ReduceMS    float64 `json:"reduce_ms"`
		ReduceSum   float64 `json:"reduce_sum"`
		SortN       int     `json:"sort_n"`
		SortMS      float64 `json:"sort_ms"`
		JoinProbes  int     `json:"join_probes"`
		JoinMS      float64 `json:"join_ms"`
		JoinResult  int64   `json:"join_result"`
		Spawns      int64   `json:"spawns"`
		StealsIntra int64   `json:"steals_intra"`
		StealsInter int64   `json:"steals_inter"`
		OK          bool    `json:"ok"`
	}{n, forMS, reduceMS, sum, sortN, sortMS, h.NProbe, joinMS, h.Result(), st.Spawns, st.StealsIntra, st.StealsInter, true}
	if out.Spawns == 0 || out.JoinResult <= 0 {
		parFail("suspicious counters: %+v", out)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		parFail("%v", err)
	}
}

// profFail prints a profile smoke failure and exits non-zero.
func profFail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "cabbench: profile: "+format+"\n", args...)
	os.Exit(1)
}

// runProfile is the scheduler X-ray smoke: fib on a 2x2 squad machine at
// BL 1 with profiling (and hardware counters, where the host grants
// them) armed from construction, then a books-balance check — the flow
// matrix's probe/hit/frame sums must equal the scheduler's own steal
// counters exactly, and real work must show up as exec time. Emits the
// roll-up as JSON on stdout; any imbalance exits 1.
func runProfile() {
	sched, err := cab.New(cab.Config{
		Machine:       cab.Machine{Sockets: 2, CoresPerSocket: 2, SharedCache: 1 << 20},
		BoundaryLevel: 1,
		Profile:       true,
		HWC:           true,
	})
	if err != nil {
		profFail("%v", err)
	}
	defer sched.Close()

	// Fork-join fib with yielding leaves: the yields give thieves a
	// chance even when GOMAXPROCS or the core count is small, so the flow
	// matrix is populated on any host.
	var fib func(n int) cab.TaskFunc
	fib = func(n int) cab.TaskFunc {
		return func(t cab.Task) {
			if n < 2 {
				runtime.Gosched()
				return
			}
			t.Spawn(fib(n - 1))
			t.Spawn(fib(n - 2))
			t.Sync()
		}
	}
	start := time.Now()
	if err := sched.Run(fib(22)); err != nil {
		profFail("fib run: %v", err)
	}
	wallMS := float64(time.Since(start).Microseconds()) / 1000

	p := sched.Profile()
	st := sched.Stats()
	if !p.Enabled {
		profFail("profiling not armed despite Config.Profile")
	}

	var times cab.StateTimes
	squadExecMS := make([]float64, len(p.Squads))
	for i, sq := range p.Squads {
		times.Exec += sq.Times.Exec
		times.ScanIntra += sq.Times.ScanIntra
		times.ScanInter += sq.Times.ScanInter
		times.Park += sq.Times.Park
		times.AdmitWait += sq.Times.AdmitWait
		squadExecMS[i] = float64(sq.Times.Exec.Microseconds()) / 1000
	}
	var probes, hits, frames int64
	for _, row := range p.Flow {
		for _, c := range row {
			probes += c.Probes
			hits += c.Hits
			frames += c.Frames
		}
	}

	out := struct {
		FibN        int       `json:"fib_n"`
		WallMS      float64   `json:"wall_ms"`
		ExecMS      float64   `json:"exec_ms"`
		ScanIntraMS float64   `json:"scan_intra_ms"`
		ScanInterMS float64   `json:"scan_inter_ms"`
		ParkMS      float64   `json:"park_ms"`
		SquadExecMS []float64 `json:"squad_exec_ms"`
		FlowProbes  int64     `json:"flow_probes"`
		FlowHits    int64     `json:"flow_hits"`
		FlowFrames  int64     `json:"flow_frames"`
		StealsIntra int64     `json:"steals_intra"`
		StealsInter int64     `json:"steals_inter"`
		HWC         bool      `json:"hwc_available"`
		OK          bool      `json:"ok"`
	}{
		22, wallMS,
		float64(times.Exec.Microseconds()) / 1000,
		float64(times.ScanIntra.Microseconds()) / 1000,
		float64(times.ScanInter.Microseconds()) / 1000,
		float64(times.Park.Microseconds()) / 1000,
		squadExecMS, probes, hits, frames,
		st.StealsIntra, st.StealsInter, p.HWCAvailable, true,
	}
	if times.Exec <= 0 {
		profFail("no exec time accounted over a fib run: %+v", out)
	}
	if times.Total() <= 0 {
		profFail("total state time is zero: %+v", out)
	}
	if probes != st.ProbesIntra+st.ProbesInter {
		profFail("flow probes %d != ProbesIntra %d + ProbesInter %d",
			probes, st.ProbesIntra, st.ProbesInter)
	}
	if hits != st.StealsIntra+st.StealsInter {
		profFail("flow hits %d != StealsIntra %d + StealsInter %d",
			hits, st.StealsIntra, st.StealsInter)
	}
	if frames != st.StealsIntra+st.StealsInterTasks {
		profFail("flow frames %d != StealsIntra %d + StealsInterTasks %d",
			frames, st.StealsIntra, st.StealsInterTasks)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		profFail("%v", err)
	}
}

// chaosFail prints a smoke failure and exits non-zero.
func chaosFail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "cabbench: chaos: "+format+"\n", args...)
	os.Exit(1)
}

// runChaos is the fault-tolerance smoke test: frozen worker, forced
// inter-tier panic, and a doomed deadline, all against one Scheduler with
// a fast watchdog. It emits the final health counters as JSON on stdout
// and exits 1 on any deviation.
func runChaos() {
	inj := chaos.New(42)
	sched, err := cab.New(cab.Config{
		Machine:       cab.Machine{Sockets: 2, CoresPerSocket: 2, SharedCache: 1 << 20},
		BoundaryLevel: 1,
		FaultHook:     inj.Hook,
		Watchdog: cab.WatchdogConfig{
			Interval: 5 * time.Millisecond, StallAfter: 25 * time.Millisecond,
			Output: os.Stderr,
		},
	})
	if err != nil {
		chaosFail("%v", err)
	}
	defer sched.Close()
	defer inj.UnfreezeAll() // never leave a frozen worker for Close to wait on

	// Scenario 1: freeze worker 1 mid-task-body. The root streams leaves
	// until the freeze is entered (a fixed fanout could drain on the other
	// workers), the watchdog must flag the stall, DumpState must name the
	// worker, and after the thaw the job drains cleanly.
	const frozenWorker = 1
	entered := inj.FreezeWorker(frozenWorker, cab.FaultExec)
	// Two-level stream: at BL 1 the level-1 branches are inter-tier (head
	// workers only), but their level-2 leaves are intra-tier and stealable
	// by every worker — including the one under the freeze gate.
	branch := func(p cab.Task) {
		for k := 0; k < 4; k++ {
			p.Spawn(func(cab.Task) { time.Sleep(20 * time.Microsecond) })
		}
		p.Sync()
	}
	j, err := sched.Submit(context.Background(), func(p cab.Task) {
		for i := 0; ; i++ {
			select {
			case <-entered:
				p.Sync()
				return
			default:
			}
			p.Spawn(branch)
			if i%8 == 7 {
				p.Sync()
			}
		}
	})
	if err != nil {
		chaosFail("freeze job submit: %v", err)
	}
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		chaosFail("worker %d never hit the freeze gate", frozenWorker)
	}
	deadline := time.Now().Add(10 * time.Second)
	for sched.Health().StalledWorkers == 0 {
		if time.Now().After(deadline) {
			chaosFail("watchdog never flagged the frozen worker")
		}
		time.Sleep(time.Millisecond)
	}
	var dump bytes.Buffer
	sched.DumpState(&dump)
	if want := fmt.Sprintf("worker %d", frozenWorker); !strings.Contains(dump.String(), want+" (") ||
		!strings.Contains(dump.String(), "STALLED") {
		chaosFail("DumpState does not name the frozen worker:\n%s", dump.String())
	}
	inj.Unfreeze(frozenWorker)
	if err := j.Wait(); err != nil {
		chaosFail("frozen job after thaw: %v", err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for sched.Health().StalledWorkers != 0 {
		if time.Now().After(deadline) {
			chaosFail("stall never recovered after thaw")
		}
		time.Sleep(time.Millisecond)
	}

	// Scenario 2: one-shot forced panic in an inter-socket-tier task
	// (level 1 at BL 1). It must surface from Wait as the injected value,
	// and the next job must run clean — the squad's busy state came back.
	inj.PanicNext(chaos.Match{Worker: chaos.Any, Level: 1, Tier: 1})
	j, err = sched.Submit(context.Background(), func(p cab.Task) {
		for i := 0; i < 8; i++ {
			p.Spawn(func(cab.Task) {})
		}
		p.Sync()
	})
	if err != nil {
		chaosFail("panic job submit: %v", err)
	}
	werr := j.Wait()
	if werr == nil || !strings.Contains(werr.Error(), "chaos: injected panic") {
		chaosFail("panic job Wait = %v, want the injected panic", werr)
	}
	if err := sched.Run(func(p cab.Task) {
		for i := 0; i < 8; i++ {
			p.Spawn(func(cab.Task) {})
		}
		p.Sync()
	}); err != nil {
		chaosFail("job after injected panic: %v", err)
	}

	// Scenario 3: a 20ms deadline on an unbounded DAG must come back as
	// ErrDeadlineExceeded, promptly.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	var spin func(p cab.Task)
	spin = func(p cab.Task) {
		p.Spawn(spin)
		p.Sync()
	}
	j, err = sched.Submit(ctx, spin)
	if err != nil {
		chaosFail("deadline job submit: %v", err)
	}
	if werr := j.Wait(); !errors.Is(werr, cab.ErrDeadlineExceeded) {
		chaosFail("deadline job Wait = %v, want ErrDeadlineExceeded", werr)
	}

	h := sched.Health()
	st := inj.Stats()
	out := struct {
		Stalls          int64 `json:"watchdog_stalls"`
		StallsRecovered int64 `json:"watchdog_stalls_recovered"`
		DeadlineCancels int64 `json:"watchdog_deadline_cancels"`
		Freezes         int64 `json:"injected_freezes"`
		Panics          int64 `json:"injected_panics"`
		OK              bool  `json:"ok"`
	}{h.Stalls, h.StallsRecovered, h.DeadlineCancels, st.Freezes, st.Panics, true}
	if out.Stalls < 1 || out.StallsRecovered < 1 || out.Freezes < 1 || out.Panics != 1 {
		chaosFail("watchdog/injector counters not exercised: %+v", out)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		chaosFail("%v", err)
	}
}

// runLoadgen drives the jobs subsystem end to end through the public API:
// `submitters` goroutines each submit `jobs` fork-join jobs of `width`
// leaves and wait on the futures, all against one shared Scheduler.
func runLoadgen(submitters, jobs, width, queue int) {
	sched, err := cab.New(cab.Config{QueueDepth: queue})
	if err != nil {
		fmt.Fprintf(os.Stderr, "cabbench: %v\n", err)
		os.Exit(1)
	}
	defer sched.Close()
	total := submitters * jobs
	fmt.Printf("== loadgen: %d submitters x %d jobs x %d leaves (queue %d, BL %d)\n",
		submitters, jobs, width, queue, sched.BoundaryLevel())
	body := func(p cab.Task) {
		for i := 0; i < width; i++ {
			p.Spawn(func(cab.Task) {})
		}
		p.Sync()
	}
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, submitters)
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < jobs; i++ {
				j, err := sched.Submit(context.Background(), body)
				if err != nil {
					errs <- err
					return
				}
				if err := j.Wait(); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		fmt.Fprintf(os.Stderr, "cabbench: loadgen: %v\n", err)
		os.Exit(1)
	}
	el := time.Since(start)
	st := sched.ServiceStats()
	fmt.Printf("   %d jobs in %s: %.1f jobs/sec\n", total, el.Round(time.Millisecond), float64(total)/el.Seconds())
	fmt.Printf("   service: submitted %d, completed %d, rejected %d, cancelled %d\n",
		st.Submitted, st.Completed, st.Rejected, st.Cancelled)
}
