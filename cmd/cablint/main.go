// Command cablint checks the CAB runtime's concurrency and hot-path
// invariants (see internal/lint). It runs two ways:
//
// Standalone, over package patterns:
//
//	cablint ./...
//	cablint -json ./internal/rt
//
// As a vet tool, which lets the go command drive it per package with
// build caching and export data it has already computed:
//
//	go vet -vettool=$(pwd)/bin/cablint ./...
//
// In vet-tool mode cablint speaks cmd/go's vettool protocol: it answers
// the -V=full version handshake and the -flags probe, and otherwise
// receives a JSON config file describing one package (file set, import
// map, export data locations) per invocation.
//
// Individual analyzers can be disabled with -atomicfield=false etc.
// Exit status: 0 clean, 1 usage or load failure (standalone findings
// also exit 1), 2 findings in vet-tool mode.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"cab/internal/lint"
)

var (
	versionFlag = flag.String("V", "", "print version and exit (used by the go command's vettool handshake)")
	flagsProbe  = flag.Bool("flags", false, "print the tool's flags as JSON and exit (go command probe)")
	jsonOut     = flag.Bool("json", false, "emit machine-readable diagnostics on stdout (standalone mode)")
	tagsFlag    = flag.String("tags", "", "comma-separated build tags for package loading (standalone mode)")

	enabled = map[string]*bool{}
)

func init() {
	for _, a := range lint.All() {
		enabled[a.Name] = flag.Bool(a.Name, true, "enable the "+a.Name+" analyzer: "+a.Doc)
	}
}

func main() {
	os.Exit(run())
}

func run() int {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: cablint [flags] [package patterns]\n   or: go vet -vettool=$(command -v cablint) [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *versionFlag != "" {
		return printVersion(*versionFlag)
	}
	if *flagsProbe {
		return printFlags()
	}

	var analyzers []*lint.Analyzer
	for _, a := range lint.All() {
		if *enabled[a.Name] {
			analyzers = append(analyzers, a)
		}
	}

	if flag.NArg() == 1 && strings.HasSuffix(flag.Arg(0), ".cfg") {
		return vetTool(flag.Arg(0), analyzers)
	}
	return standalone(flag.Args(), analyzers)
}

// printVersion answers `cablint -V=full`. The go command requires at
// least three fields with "version" second; for a "devel" version the
// final field must carry a content hash, which doubles as the cache key
// that invalidates vet results when the tool binary changes.
func printVersion(mode string) int {
	if mode != "full" {
		fmt.Println("cablint version devel")
		return 0
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cablint:", err)
		return 1
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cablint:", err)
		return 1
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintln(os.Stderr, "cablint:", err)
		return 1
	}
	fmt.Printf("cablint version devel buildID=%x\n", h.Sum(nil))
	return 0
}

// printFlags answers `cablint -flags`: the go command asks which flags
// the tool supports before forwarding any.
func printFlags() int {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		b, isBool := f.Value.(interface{ IsBoolFlag() bool })
		out = append(out, jsonFlag{f.Name, isBool && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.Marshal(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cablint:", err)
		return 1
	}
	os.Stdout.Write(data)
	fmt.Println()
	return 0
}

// vetConfig is the per-package JSON config cmd/go hands a vet tool.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// vetTool analyzes the single package described by cfgPath, printing
// diagnostics the way cmd/vet does: file:line:col on stderr, exit 2.
func vetTool(cfgPath string, analyzers []*lint.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cablint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "cablint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// cablint exports no facts, so a facts-only invocation (a dependency
	// of the packages being vetted) has nothing to compute.
	if cfg.VetxOnly {
		return writeVetx(cfg.VetxOutput)
	}

	pkg, err := checkVetPackage(&cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(cfg.VetxOutput)
		}
		fmt.Fprintf(os.Stderr, "cablint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	diags, waivers, err := lint.RunAll(pkg, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cablint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	diags = append(diags, staleWaiverDiags(waivers, analyzers)...)
	if code := writeVetx(cfg.VetxOutput); code != 0 {
		return code
	}
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d.String())
	}
	return 2
}

// writeVetx records the (empty) fact set so the go command can cache
// this vet result.
func writeVetx(path string) int {
	if path == "" {
		return 0
	}
	if err := os.WriteFile(path, []byte("cablint\n"), 0o666); err != nil {
		fmt.Fprintln(os.Stderr, "cablint:", err)
		return 1
	}
	return 0
}

// checkVetPackage parses and type-checks the package a vet config
// describes, resolving imports through the config's export-data tables.
func checkVetPackage(cfg *vetConfig) (*lint.Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "source"
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	sizes := types.SizesFor(compiler, runtime.GOARCH)
	if sizes == nil {
		sizes = types.SizesFor("gc", runtime.GOARCH)
	}
	conf := types.Config{
		Importer:  importer.ForCompiler(fset, compiler, lookup),
		Sizes:     sizes,
		GoVersion: cfg.GoVersion,
	}
	info := lint.NewInfo()
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &lint.Package{
		ImportPath: cfg.ImportPath,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		Sizes:      conf.Sizes,
	}, nil
}

// staleWaiverDiags turns unused //cab:allow waivers into diagnostics: a
// waiver that suppresses nothing pre-approves a future regression at its
// line, so it must be deleted when the code it excused is fixed. Waivers
// naming a known analyzer that is disabled this run are skipped (their
// usage cannot be judged); waivers naming no analyzer at all are always
// flagged.
func staleWaiverDiags(waivers []lint.Waiver, analyzers []*lint.Analyzer) []lint.Diagnostic {
	running := map[string]bool{}
	for _, a := range analyzers {
		running[a.Name] = true
	}
	var out []lint.Diagnostic
	for _, w := range waivers {
		if w.Used {
			continue
		}
		if !running[w.Analyzer] {
			if lint.ByName(w.Analyzer) != nil {
				continue // analyzer disabled this run; cannot judge staleness
			}
			out = append(out, lint.Diagnostic{
				Pos: w.Pos, Analyzer: "waiver",
				Message: fmt.Sprintf("//cab:allow %s names no analyzer: fix the name or delete the waiver", w.Analyzer),
			})
			continue
		}
		out = append(out, lint.Diagnostic{
			Pos: w.Pos, Analyzer: "waiver",
			Message: fmt.Sprintf("stale //cab:allow %s waiver suppresses nothing: delete it (it would silently excuse a future violation here)", w.Analyzer),
		})
	}
	return out
}

// standalone loads patterns itself via `go list -export` and reports on
// stdout. Test variants of a package re-analyze its non-test files, so
// diagnostics and waivers are deduplicated by position before reporting;
// a waiver counts as used if any variant used it.
func standalone(patterns []string, analyzers []*lint.Analyzer) int {
	var tags []string
	if *tagsFlag != "" {
		tags = strings.Split(*tagsFlag, ",")
	}
	pkgs, err := lint.LoadTags(".", tags, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cablint:", err)
		return 1
	}
	seen := map[string]bool{}
	var diags []lint.Diagnostic
	waiverAt := map[string]*lint.Waiver{}
	var waiverKeys []string
	for _, pkg := range pkgs {
		ds, ws, err := lint.RunAll(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cablint: %s: %v\n", pkg.ImportPath, err)
			return 1
		}
		for _, d := range ds {
			key := d.String()
			if !seen[key] {
				seen[key] = true
				diags = append(diags, d)
			}
		}
		for _, w := range ws {
			key := fmt.Sprintf("%s:%d %s", w.Pos.Filename, w.Pos.Line, w.Analyzer)
			if prev, ok := waiverAt[key]; ok {
				prev.Used = prev.Used || w.Used
				continue
			}
			w := w
			waiverAt[key] = &w
			waiverKeys = append(waiverKeys, key)
		}
	}
	var waivers []lint.Waiver
	for _, key := range waiverKeys {
		waivers = append(waivers, *waiverAt[key])
	}
	diags = append(diags, staleWaiverDiags(waivers, analyzers)...)
	if *jsonOut {
		return emitJSON(diags, waivers, analyzers)
	}
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// emitJSON prints the machine-readable report consumed by
// scripts/bench.sh: a total, per-analyzer violation counts, per-analyzer
// counts of used waivers (accepted debt is tracked, not invisible), and
// the diagnostics themselves — including any stale-waiver findings.
func emitJSON(diags []lint.Diagnostic, waivers []lint.Waiver, analyzers []*lint.Analyzer) int {
	type jsonDiag struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	report := struct {
		Total       int            `json:"total"`
		Counts      map[string]int `json:"counts"`
		Waivers     map[string]int `json:"waivers"`
		Diagnostics []jsonDiag     `json:"diagnostics"`
	}{
		Total:       len(diags),
		Counts:      map[string]int{},
		Waivers:     map[string]int{},
		Diagnostics: []jsonDiag{},
	}
	for _, a := range analyzers {
		report.Counts[a.Name] = 0
		report.Waivers[a.Name] = 0
	}
	for _, w := range waivers {
		if w.Used {
			report.Waivers[w.Analyzer]++
		}
	}
	for _, d := range diags {
		report.Counts[d.Analyzer]++
		report.Diagnostics = append(report.Diagnostics, jsonDiag{
			File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
			Analyzer: d.Analyzer, Message: d.Message,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintln(os.Stderr, "cablint:", err)
		return 1
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
