package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cab"
)

// synthetic builds a cumulative profile snapshot: 2 squads, a 2x2 flow
// matrix, scaled by k so two calls give a known delta.
func synthetic(k time.Duration) cab.Profile {
	mk := func(exec, scanI, scanX, park time.Duration) cab.StateTimes {
		return cab.StateTimes{Exec: exec * k, ScanIntra: scanI * k, ScanInter: scanX * k, Park: park * k}
	}
	return cab.Profile{
		Enabled: true,
		Squads: []cab.SquadProfile{
			{Squad: 0, Times: mk(80, 5, 5, 10)},
			{Squad: 1, Times: mk(40, 10, 10, 40)},
		},
		Flow: [][]cab.FlowCell{
			{{Probes: 100 * int64(k), Hits: 10 * int64(k), Frames: 10 * int64(k)}, {Probes: 20 * int64(k), Hits: 2 * int64(k), Frames: 6 * int64(k)}},
			{{Probes: 50 * int64(k), Hits: 5 * int64(k), Frames: 5 * int64(k)}, {Probes: 0, Hits: 0, Frames: 0}},
		},
	}
}

func TestRenderFrameDelta(t *testing.T) {
	var b strings.Builder
	renderFrame(&b, synthetic(1), synthetic(3), "test://", time.Second)
	out := b.String()
	// The delta is synthetic(2): squad 0 splits 80/5/5/10 over a 100 total,
	// so the percentages read directly.
	for _, want := range []string{
		"80.0", "5.0", "10.0", // squad 0 exec/scan/park split
		"40.0",      // squad 1 exec
		"200/20/20", // flow[0][0] delta: probes/hits/frames
		"40/4/12",   // flow[0][1] delta
		"100/10/10", // flow[1][0] delta
		"0/0/0",     // flow[1][1] delta
		"hwc: unavailable",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q:\n%s", want, out)
		}
	}
}

func TestRenderFrameFirstSnapshot(t *testing.T) {
	// With an empty prev (first poll) the frame must render the cumulative
	// snapshot rather than crash on shape mismatch.
	var b strings.Builder
	renderFrame(&b, cab.Profile{}, synthetic(1), "test://", time.Second)
	if out := b.String(); !strings.Contains(out, "100/10/10") {
		t.Errorf("first frame did not fall back to cumulative values:\n%s", out)
	}
}

func TestRenderFrameHW(t *testing.T) {
	cur := synthetic(2)
	cur.HWCAvailable = true
	cur.Squads[0].HW = cab.HWCounters{
		Cycles: 4_000_000_000, Instructions: 3_000_000_000,
		LLCLoads: 1_000_000, LLCMisses: 50_000,
		Valid: true, HasCycles: true, HasInstructions: true,
		HasLLCLoads: true, HasLLCMisses: true,
	}
	// Squad 1's group attached but the LLC events failed to open — the
	// line must omit LLC, not print zeros.
	cur.Squads[1].HW = cab.HWCounters{
		Cycles: 1_000_000_000, Instructions: 500_000_000,
		Valid: true, HasCycles: true, HasInstructions: true,
	}
	var b strings.Builder
	renderFrame(&b, synthetic(1), cur, "test://", time.Second)
	out := b.String()
	for _, want := range []string{
		"hwc on",
		"IPC 0.75",
		"5.0% miss",
		"hwc socket 1: 1.00G cycles  500.00M instr  IPC 0.50",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("hw frame missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "socket 1: ") && strings.Contains(strings.SplitAfter(out, "socket 1")[1], "LLC") {
		t.Errorf("socket 1 printed LLC despite HasLLCLoads=false:\n%s", out)
	}
}

func TestFetch(t *testing.T) {
	want := synthetic(5)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(want)
	}))
	defer srv.Close()
	got, err := fetch(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Enabled || len(got.Squads) != 2 || got.Flow[0][0].Probes != want.Flow[0][0].Probes {
		t.Fatalf("fetch round-trip mismatch: %+v", got)
	}
	if got.Squads[1].Times.Park != want.Squads[1].Times.Park {
		t.Fatalf("state times did not survive JSON: %+v", got.Squads[1].Times)
	}

	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusServiceUnavailable)
	}))
	defer bad.Close()
	if _, err := fetch(bad.URL); err == nil {
		t.Fatal("fetch of a 503 endpoint did not error")
	}
}
