// Command cabtop is a live terminal view of a cabserve scheduler: it
// polls the /flowz X-ray endpoint and renders, per refresh interval, the
// per-squad time-in-state split (what fraction of worker wall time went
// to executing, scanning for steals in each tier, parking, or waiting at
// the admission seam), the squad x squad steal-flow matrix, and — where
// the server has hardware counters attached — per-socket IPC and LLC
// miss ratios.
//
// /flowz snapshots are cumulative since scheduler start; cabtop diffs
// consecutive snapshots so every frame shows the last interval only,
// which is what makes phase changes (a load spike, a squad going idle)
// visible as they happen.
//
// Usage:
//
//	cabtop [-url http://localhost:8080/flowz] [-interval 1s] [-once]
//
// -once prints a single frame (diffed over one interval) without taking
// over the terminal — useful in scripts and for capturing samples.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"cab"
)

func main() {
	var (
		url      = flag.String("url", "http://localhost:8080/flowz", "cabserve /flowz endpoint to poll")
		interval = flag.Duration("interval", time.Second, "refresh interval")
		once     = flag.Bool("once", false, "print one frame and exit (no screen takeover)")
	)
	flag.Parse()

	prev, err := fetch(*url)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cabtop: %v\n", err)
		os.Exit(1)
	}
	if !prev.Enabled {
		fmt.Fprintln(os.Stderr, "cabtop: profiling is disarmed on the server (run cabserve with -profile)")
		os.Exit(1)
	}
	for {
		time.Sleep(*interval)
		cur, err := fetch(*url)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cabtop: %v\n", err)
			os.Exit(1)
		}
		if !*once {
			fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
		}
		renderFrame(os.Stdout, prev, cur, *url, *interval)
		if *once {
			return
		}
		prev = cur
	}
}

// fetch pulls one cumulative profile snapshot.
func fetch(url string) (cab.Profile, error) {
	var p cab.Profile
	resp, err := http.Get(url)
	if err != nil {
		return p, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return p, fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		return p, fmt.Errorf("%s: %v", url, err)
	}
	return p, nil
}

// renderFrame writes one terminal frame: the delta between two
// cumulative snapshots. Factored from main so tests can drive it with
// synthetic profiles.
func renderFrame(w io.Writer, prev, cur cab.Profile, url string, interval time.Duration) {
	hw := "hwc off"
	if cur.HWCAvailable {
		hw = "hwc on"
	}
	fmt.Fprintf(w, "cabtop — %s — %s — every %v\n\n", url, hw, interval)

	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "SQUAD\tEXEC%\tSCAN-I%\tSCAN-X%\tPARK%\tADMIT%\t")
	for i, sq := range cur.Squads {
		var d cab.StateTimes
		if i < len(prev.Squads) {
			d = deltaTimes(prev.Squads[i].Times, sq.Times)
		} else {
			d = sq.Times
		}
		total := d.Total()
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%s\t%s\t\n", sq.Squad,
			pct(d.Exec, total), pct(d.ScanIntra, total), pct(d.ScanInter, total),
			pct(d.Park, total), pct(d.AdmitWait, total))
	}
	tw.Flush()

	fmt.Fprintf(w, "\nsteal flow this interval (probes/hits/frames), thief squad ↓ victim squad →\n")
	tw = tabwriter.NewWriter(w, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprint(tw, "\t")
	for j := range cur.Flow {
		fmt.Fprintf(tw, "sq%d\t", j)
	}
	fmt.Fprintln(tw)
	for i, row := range cur.Flow {
		fmt.Fprintf(tw, "sq%d\t", i)
		for j, c := range row {
			d := c
			if i < len(prev.Flow) && j < len(prev.Flow[i]) {
				p := prev.Flow[i][j]
				d = cab.FlowCell{Probes: c.Probes - p.Probes, Hits: c.Hits - p.Hits, Frames: c.Frames - p.Frames}
			}
			fmt.Fprintf(tw, "%d/%d/%d\t", d.Probes, d.Hits, d.Frames)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()

	if !cur.HWCAvailable {
		fmt.Fprintf(w, "\nhwc: unavailable (software-only profile)\n")
		return
	}
	fmt.Fprintln(w)
	for i, sq := range cur.Squads {
		var p cab.HWCounters
		if i < len(prev.Squads) {
			p = prev.Squads[i].HW
		}
		fmt.Fprintf(w, "hwc socket %d: %s\n", sq.Squad, hwLine(p, sq.HW))
	}
}

// deltaTimes subtracts two cumulative StateTimes field-wise.
func deltaTimes(prev, cur cab.StateTimes) cab.StateTimes {
	return cab.StateTimes{
		Exec:      cur.Exec - prev.Exec,
		ScanIntra: cur.ScanIntra - prev.ScanIntra,
		ScanInter: cur.ScanInter - prev.ScanInter,
		Park:      cur.Park - prev.Park,
		AdmitWait: cur.AdmitWait - prev.AdmitWait,
	}
}

// pct renders part/total as a percentage, "-" for an idle (zero-total)
// interval.
func pct(part, total time.Duration) string {
	if total <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", 100*float64(part)/float64(total))
}

// hwLine renders one socket's hardware-counter delta: raw cycle and
// instruction counts with derived IPC, and the LLC miss ratio. Counters
// that failed to open individually are reported absent, not zero.
func hwLine(prev, cur cab.HWCounters) string {
	if !cur.Valid {
		return "not attached"
	}
	var parts []string
	cyc := cur.Cycles - prev.Cycles
	ins := cur.Instructions - prev.Instructions
	if cur.HasCycles {
		parts = append(parts, fmt.Sprintf("%s cycles", human(cyc)))
	}
	if cur.HasInstructions {
		parts = append(parts, fmt.Sprintf("%s instr", human(ins)))
	}
	if cur.HasCycles && cur.HasInstructions && cyc > 0 {
		parts = append(parts, fmt.Sprintf("IPC %.2f", float64(ins)/float64(cyc)))
	}
	if cur.HasLLCLoads && cur.HasLLCMisses {
		loads := cur.LLCLoads - prev.LLCLoads
		miss := cur.LLCMisses - prev.LLCMisses
		if loads > 0 {
			parts = append(parts, fmt.Sprintf("LLC %s loads %.1f%% miss", human(loads), 100*float64(miss)/float64(loads)))
		}
	}
	if len(parts) == 0 {
		return "no readable counters"
	}
	return strings.Join(parts, "  ")
}

// human renders a count with K/M/G suffixes for terminal width.
func human(v uint64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", float64(v)/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", float64(v)/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fK", float64(v)/1e3)
	}
	return fmt.Sprintf("%d", v)
}
