// Command cabtopo shows the machine description CAB would use on this host
// (parsed from /proc/cpuinfo, as the paper's runtime does) and the
// boundary level Eq. 4 selects for a given workload size.
//
// Usage:
//
//	cabtopo [-sd bytes] [-b branch] [-paper]
package main

import (
	"flag"
	"fmt"

	"cab/internal/core"
	"cab/internal/topology"
)

func main() {
	var (
		sd    = flag.Int64("sd", 8<<20, "input data size Sd in bytes")
		b     = flag.Int("b", 2, "branching degree B of the recursion")
		paper = flag.Bool("paper", false, "use the paper's Opteron 8380 testbed instead of detecting")
	)
	flag.Parse()

	var top topology.Topology
	if *paper {
		top = topology.Opteron8380()
		fmt.Println("machine (paper testbed):", top)
	} else {
		top = topology.Detect(topology.Opteron8380())
		fmt.Println("machine (detected, Opteron 8380 fallback):", top)
	}
	fmt.Printf("M (sockets) = %d, N (cores/socket) = %d, Sc (shared cache) = %d bytes\n",
		top.Sockets, top.CoresPerSocket, top.SharedCacheBytes())

	bl, err := core.BoundaryLevel(core.Params{
		Branch:      *b,
		Sockets:     top.Sockets,
		InputBytes:  *sd,
		SharedCache: top.SharedCacheBytes(),
	})
	if err != nil {
		fmt.Println("Eq. 4 error:", err)
		return
	}
	fmt.Printf("Eq. 4: BL = %d for Sd = %d bytes, B = %d\n", bl, *sd, *b)
	if bl > 0 {
		k := core.LeafInterTasks(*b, bl)
		fmt.Printf("leaf inter-socket tasks K = B^(BL-1) = %d (%.2f per squad), leaf data = %d bytes (Sc = %d)\n",
			k, float64(k)/float64(top.Sockets), (*sd)/k, top.SharedCacheBytes())
		t1, t2 := core.SatisfiesConstraints(core.Params{
			Branch: *b, Sockets: top.Sockets, InputBytes: *sd, SharedCache: top.SharedCacheBytes(),
		}, bl)
		fmt.Printf("Eq. 1 (enough leaf tasks): %v; Eq. 2 (fits shared cache): %v\n", t1, t2)
	} else {
		fmt.Println("single tier (BL = 0): traditional task-stealing")
	}
}
