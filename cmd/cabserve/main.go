// Command cabserve demonstrates the multi-job subsystem as a service: one
// shared cab.Scheduler behind an HTTP front end, with every request
// submitted as an independent job. Concurrent requests interleave on the
// squad-structured worker pool; a client that disconnects cancels its job
// (the request context is the job context); a full admission queue maps to
// 503 Service Unavailable; SIGINT drains in-flight jobs before exit.
//
// Under overload the server degrades gracefully instead of queueing
// without bound: a background shedder watches the windowed p95 job
// queue-wait (see shed.go) and, past the -shed-target, refuses new work
// submissions with 503 + Retry-After before they enter the queue.
//
// Usage:
//
//	cabserve [-addr :8080] [-queue 64] [-reject]
//	         [-shed-target 100ms] [-shed-interval 250ms]
//	         [-profile=true] [-hwc=true] [-sockets M] [-cores N]
//
// Endpoints:
//
//	GET /fib?n=30       parallel Fibonacci (fork-join tree, serial cutoff)
//	GET /matmul?n=128   parallel n x n matrix multiply, returns a checksum
//	GET /nqueens?n=10   parallel N-queens solution count
//	GET /sort?n=100000  data-parallel sample sort of n keys, returns a checksum
//	GET /join?n=100000  partitioned hash join (n probes vs n/2 build tuples),
//	                    returns the matched payload sum
//	GET /statz          scheduler + job-service counters (JSON)
//	GET /flowz          the scheduler X-ray profile (JSON): per-worker and
//	                    per-squad time-in-state, the squad x squad
//	                    steal-flow matrix, hardware counters when attached;
//	                    cabtop polls this
//	GET /healthz        liveness: 200 unless the watchdog sees wedged workers
//	GET /readyz         readiness: 200 unless draining or shedding load
//	GET /dumpz          the scheduler's DumpState diagnostic (plain text)
//	GET /metricz        Prometheus text exposition: counters, per-squad
//	                    breakdowns, p50/p95/p99 job latency histograms
//	GET /tracez?ms=500  arm event tracing for a window and stream the
//	                    recorded Chrome trace-viewer JSON back
//	GET /debug/pprof/   standard net/http/pprof profiles
//
// Work endpoints return JSON: the job ID, the result, wall-clock time and
// the job's scheduler events (spawns, steals, migrations) — the per-job
// accounting the runtime keeps for each submission.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"cab"
	"cab/internal/workloads"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		queue        = flag.Int("queue", 64, "job admission queue depth")
		reject       = flag.Bool("reject", false, "reject submissions when the queue is full (default: block)")
		shedTarget   = flag.Duration("shed-target", 100*time.Millisecond, "shed new work when windowed p95 queue wait exceeds this (0 disables)")
		shedInterval = flag.Duration("shed-interval", 250*time.Millisecond, "shedding decision window")
		profile      = flag.Bool("profile", true, "arm time-in-state and steal-flow accounting (serves /flowz; a few ns per state transition)")
		hwcFlag      = flag.Bool("hwc", true, "attach per-thread hardware perf counters where the host allows")
		sockets      = flag.Int("sockets", 0, "override the machine model's socket count (0 = detect)")
		cores        = flag.Int("cores", 0, "override cores per socket (0 = detect)")
	)
	flag.Parse()

	policy := cab.BlockWhenFull
	if *reject {
		policy = cab.RejectWhenFull
	}
	var machine cab.Machine // zero value = DetectMachine
	if *sockets > 0 || *cores > 0 {
		machine = cab.DetectMachine()
		if *sockets > 0 {
			machine.Sockets = *sockets
		}
		if *cores > 0 {
			machine.CoresPerSocket = *cores
		}
	}
	sched, err := cab.New(cab.Config{
		Machine:    machine,
		QueueDepth: *queue, OnFull: policy,
		Profile: *profile, HWC: *hwcFlag,
		// Watchdog diagnostics (stalled workers, overdue jobs) go to the
		// server log; thresholds are the defaults (250ms / 1s).
		Watchdog: cab.WatchdogConfig{Output: os.Stderr},
	})
	if err != nil {
		log.Fatalf("cabserve: %v", err)
	}
	sv := newServer(sched, *shedTarget, *shedInterval)

	srv := &http.Server{
		Addr:    *addr,
		Handler: sv.routes(),
		// A slowloris client must not hold a connection (and its worker
		// goroutine) forever: bound every phase of the exchange. The write
		// timeout still leaves room for the longest work endpoints and a
		// full /tracez window.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Println("cabserve: shutting down (draining in-flight jobs)")
		sv.draining.Store(true) // /readyz flips before the listener closes
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx) // stop accepting, finish open requests
		sv.shed.close()
		sched.Close() // drain admitted jobs, stop workers
	}()

	log.Printf("cabserve: listening on %s (BL %d, queue %d, reject=%v, shed-target %v)",
		*addr, sched.BoundaryLevel(), *queue, *reject, *shedTarget)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("cabserve: %v", err)
	}
	<-done
}

// maxTraceWindow caps how long a single /tracez request may keep tracing
// armed; longer windows just overwrite the ring buffers anyway.
const maxTraceWindow = 10 * time.Second

// server bundles the shared scheduler with the service-level state the
// handlers consult: the overload shedder and the draining flag /readyz
// reports during shutdown.
type server struct {
	sched    *cab.Scheduler
	shed     *shedder // nil when shedding is disabled
	draining atomic.Bool
}

// newServer wires the scheduler to a shedder (target <= 0 disables it).
func newServer(sched *cab.Scheduler, shedTarget, shedInterval time.Duration) *server {
	return &server{sched: sched, shed: newShedder(sched, shedTarget, shedInterval)}
}

// routes builds the full routing table. Factored out of main so tests can
// drive the exact production handlers through httptest without binding a
// socket.
func (sv *server) routes() *http.ServeMux {
	sched := sv.sched
	mux := http.NewServeMux()
	mux.HandleFunc("/fib", sv.handler(1, 45, fibJob))
	mux.HandleFunc("/matmul", sv.handler(1, 1024, matmulJob))
	mux.HandleFunc("/nqueens", sv.handler(1, 14, nqueensJob))
	mux.HandleFunc("/sort", sv.handler(256, 1<<21, sortJob))
	mux.HandleFunc("/join", sv.handler(256, 1<<21, joinJob))
	mux.HandleFunc("/statz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"scheduler": sched.Stats(),
			"squads":    sched.SquadStats(),
			"service":   sched.ServiceStats(),
			"health":    sched.Health(),
		})
	})
	mux.HandleFunc("/flowz", func(w http.ResponseWriter, r *http.Request) {
		// The full X-ray snapshot. Cumulative since start: pollers (cabtop)
		// diff consecutive snapshots to window an interval.
		writeJSON(w, http.StatusOK, sched.Profile())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		// Liveness: the process serves and the worker pool is intact — no
		// wedged workers the supervisor has not yet replaced, no squads
		// quarantined after repeated deaths. Overload does NOT fail
		// liveness — a shedding server is degraded, not dead (that is
		// /readyz's distinction).
		h := sched.Health()
		switch {
		case h.StalledWorkers > 0:
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"status": "stalled", "stalled_workers": h.StalledWorkers,
			})
		case h.QuarantinedSquads > 0:
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"status": "degraded", "quarantined_squads": h.QuarantinedSquads,
				"worker_deaths": h.WorkerDeaths,
			})
		default:
			writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
		}
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		// Readiness: route new traffic here only if the server is neither
		// draining for shutdown nor shedding under overload, and the pool
		// is at full strength. A stalled or quarantined pool keeps serving
		// admitted work but should stop attracting new traffic until the
		// supervisor heals it.
		h := sched.Health()
		switch {
		case sv.draining.Load():
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		case sv.shed.shedding():
			w.Header().Set("Retry-After", strconv.FormatInt(sv.shed.retryAfterSeconds(), 10))
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"status": "shedding", "queue_wait_p95_ns": sv.shed.lastP95.Load(),
			})
		case h.StalledWorkers > 0 || h.QuarantinedSquads > 0:
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"status": "degraded", "stalled_workers": h.StalledWorkers,
				"quarantined_squads": h.QuarantinedSquads,
			})
		default:
			writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
		}
	})
	mux.HandleFunc("/dumpz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		sched.DumpState(w)
	})
	mux.HandleFunc("/metricz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		sched.WritePrometheus(w)
		if sv.shed != nil {
			fmt.Fprintf(w, "# HELP cab_shed_total Requests refused by overload shedding.\n# TYPE cab_shed_total counter\ncab_shed_total %d\n",
				sv.shed.shedTotal.Load())
			shedding := 0
			if sv.shed.shedding() {
				shedding = 1
			}
			fmt.Fprintf(w, "# HELP cab_shedding Whether overload shedding is active.\n# TYPE cab_shedding gauge\ncab_shedding %d\n", shedding)
		}
	})

	// One trace window at a time: a concurrent /tracez would disarm the
	// first requester's window mid-collection.
	var traceMu sync.Mutex
	mux.HandleFunc("/tracez", func(w http.ResponseWriter, r *http.Request) {
		window := 500 * time.Millisecond
		if q := r.URL.Query().Get("ms"); q != "" {
			ms, err := strconv.Atoi(q)
			if err != nil || ms < 1 {
				writeJSON(w, http.StatusBadRequest, map[string]any{
					"error": "want ms as a positive integer",
				})
				return
			}
			window = time.Duration(ms) * time.Millisecond
			if window > maxTraceWindow {
				window = maxTraceWindow
			}
		}
		if !traceMu.TryLock() {
			writeJSON(w, http.StatusConflict, map[string]any{
				"error": "a trace window is already in progress",
			})
			return
		}
		defer traceMu.Unlock()
		sched.StartTrace()
		select {
		case <-time.After(window):
		case <-r.Context().Done():
			// Client gone: still StopTrace below so tracing disarms.
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="cab-trace.json"`)
		if err := sched.StopTrace(w); err != nil {
			log.Printf("cabserve: /tracez: %v", err)
		}
	})

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// jobFunc builds the task body for one request and returns where to read
// the result once the job has drained.
type jobFunc func(n int) (cab.TaskFunc, *atomic.Int64)

// handler submits one job per request, bounded to [min, max], governed by
// the request context so client disconnects cancel the job. When the
// shedder reports overload the request is refused before it touches the
// admission queue — 503 with Retry-After — so queued jobs keep draining.
func (sv *server) handler(min, max int, mk jobFunc) http.HandlerFunc {
	sched := sv.sched
	return func(w http.ResponseWriter, r *http.Request) {
		if sv.shed.shedding() {
			sv.shed.shedTotal.Add(1)
			w.Header().Set("Retry-After", strconv.FormatInt(sv.shed.retryAfterSeconds(), 10))
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"error": "overloaded: queue wait above target, try again later",
			})
			return
		}
		n, err := strconv.Atoi(r.URL.Query().Get("n"))
		if err != nil || n < min || n > max {
			writeJSON(w, http.StatusBadRequest, map[string]any{
				"error": fmt.Sprintf("want n in [%d, %d]", min, max),
			})
			return
		}
		fn, result := mk(n)
		job, err := sched.Submit(r.Context(), fn)
		if err != nil {
			writeJSON(w, submitStatus(err), map[string]any{"error": err.Error()})
			return
		}
		if err := job.Wait(); err != nil {
			writeJSON(w, http.StatusInternalServerError, map[string]any{
				"job": job.ID(), "error": err.Error(),
			})
			return
		}
		st := job.Stats()
		writeJSON(w, http.StatusOK, map[string]any{
			"job":     st.ID,
			"n":       n,
			"result":  result.Load(),
			"wall_ms": float64(st.Wall.Microseconds()) / 1000,
			"stats": map[string]int64{
				"spawns":     st.Spawns,
				"steals":     st.Steals,
				"migrations": st.Migrations,
				"helps":      st.Helps,
			},
		})
	}
}

// submitStatus maps Submit errors to HTTP: overload and shutdown are 503
// (retryable elsewhere), a dead request context is the client's 499-alike.
func submitStatus(err error) int {
	switch {
	case errors.Is(err, cab.ErrQueueFull), errors.Is(err, cab.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusRequestTimeout
	}
	return http.StatusInternalServerError
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// fibJob computes fib(n) as a fork-join tree with a serial cutoff — the
// classic work-stealing benchmark shape.
func fibJob(n int) (cab.TaskFunc, *atomic.Int64) {
	var out atomic.Int64
	var fib func(n int, dst *atomic.Int64) cab.TaskFunc
	fib = func(n int, dst *atomic.Int64) cab.TaskFunc {
		return func(t cab.Task) {
			if n < 16 {
				dst.Add(serialFib(n))
				return
			}
			t.Spawn(fib(n-1, dst))
			t.Spawn(fib(n-2, dst))
			t.Sync()
		}
	}
	return fib(n, &out), &out
}

func serialFib(n int) int64 {
	if n < 2 {
		return int64(n)
	}
	a, b := int64(0), int64(1)
	for i := 2; i <= n; i++ {
		a, b = b, a+b
	}
	return b
}

// matmulJob multiplies two deterministic n x n matrices, one spawned task
// per row band, and reports a checksum of the product.
func matmulJob(n int) (cab.TaskFunc, *atomic.Int64) {
	var out atomic.Int64
	root := func(t cab.Task) {
		a := make([]int64, n*n)
		b := make([]int64, n*n)
		c := make([]int64, n*n)
		for i := range a {
			a[i] = int64(i%7) - 3
			b[i] = int64(i%5) - 2
		}
		const band = 16
		for lo := 0; lo < n; lo += band {
			lo := lo
			hi := lo + band
			if hi > n {
				hi = n
			}
			t.Spawn(func(cab.Task) {
				for i := lo; i < hi; i++ {
					for k := 0; k < n; k++ {
						aik := a[i*n+k]
						for j := 0; j < n; j++ {
							c[i*n+j] += aik * b[k*n+j]
						}
					}
				}
			})
		}
		t.Sync()
		var sum int64
		for _, v := range c {
			sum += v
		}
		out.Store(sum)
	}
	return root, &out
}

// sortJob runs the data-parallel sample sort (internal/workloads, built
// on cab.ParallelFor's underlying loop machinery) over n deterministic
// keys and reports the checksum of the sorted output. A verification
// failure panics, surfacing from Wait as the job's error.
func sortJob(n int) (cab.TaskFunc, *atomic.Int64) {
	var out atomic.Int64
	s := workloads.NewSamplesort(n)
	sorter := s.Root()
	root := func(t cab.Task) {
		sorter(t)
		if err := s.Verify(); err != nil {
			panic(err)
		}
		var sum int64
		for _, v := range s.Sorted() {
			sum += v
		}
		out.Store(sum)
	}
	return root, &out
}

// joinJob runs the partitioned hash join with squad-affine placement:
// n probe tuples against n/2 build tuples over 32 partitions, reporting
// the matched payload sum.
func joinJob(n int) (cab.TaskFunc, *atomic.Int64) {
	var out atomic.Int64
	h := workloads.NewHashJoin(n/2, n, 32, workloads.JoinAffine)
	joiner := h.Root()
	root := func(t cab.Task) {
		joiner(t)
		if err := h.Verify(); err != nil {
			panic(err)
		}
		out.Store(h.Result())
	}
	return root, &out
}

// nqueensJob counts N-queens solutions, fanning out one task per
// first-row placement and solving serially below.
func nqueensJob(n int) (cab.TaskFunc, *atomic.Int64) {
	var out atomic.Int64
	root := func(t cab.Task) {
		for col := 0; col < n; col++ {
			col := col
			bit := uint32(1) << col
			t.Spawn(func(cab.Task) {
				out.Add(countQueens(n, 1, bit, bit<<1, bit>>1))
			})
		}
		t.Sync()
	}
	return root, &out
}

// countQueens solves rows [row, n) given the occupied columns and the
// left/right diagonal masks, bit-twiddling style.
func countQueens(n, row int, cols, left, right uint32) int64 {
	if row == n {
		return 1
	}
	var count int64
	full := uint32(1)<<n - 1
	for avail := full &^ (cols | left | right); avail != 0; {
		bit := avail & -avail
		avail &^= bit
		count += countQueens(n, row+1, cols|bit, (left|bit)<<1, (right|bit)>>1)
	}
	return count
}
