// Adaptive overload shedding: queue-wait-based admission control in the
// CoDel tradition. A background loop samples the scheduler's queue-wait
// histogram in windows (cab.LatencySince); when the windowed p95 exceeds
// the target, the server stops admitting work endpoints before they touch
// the queue — 503 with a Retry-After scaled to how far over target the
// service is — so the jobs already admitted keep their latency and the
// squads keep their cache-affinity benefits instead of thrashing through
// an ever-growing backlog. Shedding exits with hysteresis (p95 back under
// half the target, or an idle window) to keep the decision from
// flapping around the threshold.
package main

import (
	"sync/atomic"
	"time"

	"cab"
)

// minShedSamples is the fewest queue-wait samples a window must hold
// before its p95 is trusted to start shedding; one slow job in an
// otherwise idle window is noise, not overload.
const minShedSamples = 4

// Retry-After bounds, seconds.
const (
	minRetryAfter = 1
	maxRetryAfter = 30
)

// shedder decides admission for the work endpoints. The decision logic
// (observe) is pure state-machine over latency windows, so tests drive it
// directly; the loop goroutine only feeds it real windows on a ticker.
type shedder struct {
	sched  *cab.Scheduler
	target time.Duration

	active     atomic.Bool
	retryAfter atomic.Int64 // seconds, valid while active
	lastP95    atomic.Int64 // ns, last window's queue-wait p95
	shedTotal  atomic.Int64 // requests refused while active

	stop chan struct{}
	done chan struct{}
}

// newShedder starts the sampling loop; target <= 0 disables shedding
// entirely (returns nil, and a nil shedder admits everything).
func newShedder(sched *cab.Scheduler, target, interval time.Duration) *shedder {
	if target <= 0 {
		return nil
	}
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	s := &shedder{
		sched:  sched,
		target: target,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go s.loop(interval)
	return s
}

func (s *shedder) loop(interval time.Duration) {
	defer close(s.done)
	snap := s.sched.LatencySnapshot()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
		}
		var win cab.LatencyWindow
		win, snap = s.sched.LatencySince(snap)
		s.observe(win)
	}
}

// observe advances the shed state machine by one latency window.
func (s *shedder) observe(win cab.LatencyWindow) {
	p95 := win.QueueWait.P95
	s.lastP95.Store(int64(p95))
	if s.active.Load() {
		// Exit with hysteresis: an idle window (nothing adopted — either
		// drained or everything shed) or p95 back under half the target.
		if win.QueueWait.Count == 0 || p95 <= s.target/2 {
			s.active.Store(false)
			return
		}
		s.retryAfter.Store(retrySecs(p95, s.target))
		return
	}
	if win.QueueWait.Count >= minShedSamples && p95 > s.target {
		s.retryAfter.Store(retrySecs(p95, s.target))
		s.active.Store(true)
	}
}

// retrySecs scales the advised backoff with the overload ratio: just over
// target asks for a second; an order of magnitude over asks for tens.
func retrySecs(p95, target time.Duration) int64 {
	if target <= 0 {
		return minRetryAfter
	}
	secs := int64(p95 / target) // floor of the overload ratio
	if secs < minRetryAfter {
		return minRetryAfter
	}
	if secs > maxRetryAfter {
		return maxRetryAfter
	}
	return secs
}

// shedding reports whether new work should currently be refused. nil
// receiver (shedding disabled) admits everything.
func (s *shedder) shedding() bool { return s != nil && s.active.Load() }

// retryAfterSeconds is the current Retry-After advice, valid while
// shedding.
func (s *shedder) retryAfterSeconds() int64 {
	n := s.retryAfter.Load()
	if n < minRetryAfter {
		return minRetryAfter
	}
	return n
}

// close stops the sampling loop (idempotent per shedder; nil-safe).
func (s *shedder) close() {
	if s == nil {
		return
	}
	close(s.stop)
	<-s.done
}
