// httptest coverage for the production mux: the work endpoints plus the
// observability surface (/metricz Prometheus exposition, /tracez Chrome
// JSON streaming, pprof wiring).
package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cab"
)

func testServer(t *testing.T) (*cab.Scheduler, *httptest.Server) {
	t.Helper()
	sched, err := cab.New(cab.Config{
		Machine: cab.Machine{Sockets: 2, CoresPerSocket: 2, SharedCache: 1 << 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newMux(sched))
	t.Cleanup(func() { srv.Close(); sched.Close() })
	return sched, srv
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestFibEndpoint(t *testing.T) {
	_, srv := testServer(t)
	code, body := get(t, srv.URL+"/fib?n=20")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var out struct {
		Result int64 `json:"result"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if out.Result != 6765 {
		t.Fatalf("fib(20) = %d, want 6765", out.Result)
	}
}

func TestMetricz(t *testing.T) {
	_, srv := testServer(t)
	// Run a job first so the counters and histograms are non-zero.
	if code, body := get(t, srv.URL+"/fib?n=25"); code != http.StatusOK {
		t.Fatalf("warm-up job failed: %d %s", code, body)
	}
	code, body := get(t, srv.URL+"/metricz")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for _, want := range []string{
		"# TYPE cab_spawns_total counter",
		`cab_squad_spawns_total{squad="0"}`,
		`cab_squad_spawns_total{squad="1"}`,
		"cab_jobs_submitted_total 1",
		"cab_jobs_completed_total 1",
		"# TYPE cab_job_queue_wait_seconds histogram",
		`cab_job_run_seconds_bucket{le="+Inf"} 1`,
		`cab_job_run_quantile_seconds{q="0.99"}`,
		"cab_boundary_level 0",
		"cab_tracing_armed 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metricz missing %q\n--- body ---\n%s", want, body)
		}
	}
}

func TestTracez(t *testing.T) {
	sched, srv := testServer(t)
	// Generate work concurrently with the trace window so it records spans.
	done := make(chan error, 1)
	go func() {
		_, err := http.Get(srv.URL + "/fib?n=30")
		done <- err
	}()
	code, body := get(t, srv.URL+"/tracez?ms=100")
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if sched.Tracing() {
		t.Fatal("/tracez left tracing armed")
	}
	var evs []map[string]any
	if err := json.Unmarshal([]byte(body), &evs); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var spans int
	for _, e := range evs {
		if e["ph"] == "X" {
			spans++
		}
	}
	if spans == 0 {
		t.Fatal("trace window over a running job recorded no spans")
	}
}

func TestTracezBadWindow(t *testing.T) {
	_, srv := testServer(t)
	for _, q := range []string{"ms=abc", "ms=0", "ms=-5"} {
		if code, _ := get(t, srv.URL+"/tracez?"+q); code != http.StatusBadRequest {
			t.Errorf("/tracez?%s: status %d, want 400", q, code)
		}
	}
}

func TestPprofIndex(t *testing.T) {
	_, srv := testServer(t)
	code, body := get(t, srv.URL+"/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !strings.Contains(body, "goroutine") {
		t.Fatal("pprof index does not list profiles")
	}
}
