// httptest coverage for the production mux: the work endpoints plus the
// observability surface (/metricz Prometheus exposition, /tracez Chrome
// JSON streaming, pprof wiring).
package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cab"
	"cab/internal/chaos"
)

func testServer(t *testing.T) (*cab.Scheduler, *httptest.Server) {
	sched, sv, srv := testServerFull(t, 0)
	_ = sv
	return sched, srv
}

// testServerFull exposes the server struct so shed/readyz tests can drive
// the admission state machine directly. shedTarget <= 0 disables shedding;
// a positive target starts the shedder with an hour-long decision window,
// so only explicit observe calls change its state.
func testServerFull(t *testing.T, shedTarget time.Duration) (*cab.Scheduler, *server, *httptest.Server) {
	t.Helper()
	sched, err := cab.New(cab.Config{
		Machine: cab.Machine{Sockets: 2, CoresPerSocket: 2, SharedCache: 1 << 20},
		Profile: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sv := newServer(sched, shedTarget, time.Hour)
	srv := httptest.NewServer(sv.routes())
	t.Cleanup(func() { srv.Close(); sv.shed.close(); sched.Close() })
	return sched, sv, srv
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestFibEndpoint(t *testing.T) {
	_, srv := testServer(t)
	code, body := get(t, srv.URL+"/fib?n=20")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var out struct {
		Result int64 `json:"result"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if out.Result != 6765 {
		t.Fatalf("fib(20) = %d, want 6765", out.Result)
	}
}

func TestSortEndpoint(t *testing.T) {
	_, srv := testServer(t)
	code, body := get(t, srv.URL+"/sort?n=20000")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var out struct {
		N      int   `json:"n"`
		Result int64 `json:"result"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	// The checksum is deterministic per n; the job verifies sortedness
	// itself (a failure would have surfaced as a 500), so assert the
	// endpoint round-trips the parameters and a non-trivial result.
	if out.N != 20000 || out.Result == 0 {
		t.Fatalf("sort response %+v", out)
	}
	if code, body := get(t, srv.URL+"/sort?n=1"); code != http.StatusBadRequest {
		t.Fatalf("undersized n: status %d: %s", code, body)
	}
}

func TestJoinEndpoint(t *testing.T) {
	_, srv := testServer(t)
	code, body := get(t, srv.URL+"/join?n=20000")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var out struct {
		Result int64 `json:"result"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	// The join verifies against its map-based reference inside the job;
	// a mismatch panics into a 500. ~half the probes match, so the
	// payload sum is positive.
	if out.Result <= 0 {
		t.Fatalf("join result = %d, want > 0", out.Result)
	}
	if code, body := get(t, srv.URL+"/join?n=0"); code != http.StatusBadRequest {
		t.Fatalf("undersized n: status %d: %s", code, body)
	}
}

func TestMetricz(t *testing.T) {
	_, srv := testServer(t)
	// Run a job first so the counters and histograms are non-zero.
	if code, body := get(t, srv.URL+"/fib?n=25"); code != http.StatusOK {
		t.Fatalf("warm-up job failed: %d %s", code, body)
	}
	code, body := get(t, srv.URL+"/metricz")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for _, want := range []string{
		"# TYPE cab_spawns_total counter",
		`cab_squad_spawns_total{squad="0"}`,
		`cab_squad_spawns_total{squad="1"}`,
		"cab_jobs_submitted_total 1",
		"cab_jobs_completed_total 1",
		"# TYPE cab_job_queue_wait_seconds histogram",
		`cab_job_run_seconds_bucket{le="+Inf"} 1`,
		`cab_job_run_quantile_seconds{q="0.99"}`,
		"cab_boundary_level 0",
		"cab_tracing_armed 0",
		"cab_profiling_armed 1",
		"cab_hwc_available",
		`cab_squad_state_seconds_total{squad="0",state="exec"}`,
		`cab_steal_flow_probes_total{src="0",dst="1"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metricz missing %q\n--- body ---\n%s", want, body)
		}
	}
}

func TestStatz(t *testing.T) {
	_, srv := testServer(t)
	if code, body := get(t, srv.URL+"/fib?n=25"); code != http.StatusOK {
		t.Fatalf("warm-up job failed: %d %s", code, body)
	}
	code, body := get(t, srv.URL+"/statz")
	if code != http.StatusOK {
		t.Fatalf("/statz status %d", code)
	}
	var out struct {
		Scheduler struct {
			Spawns int64 `json:"Spawns"`
		} `json:"scheduler"`
		Squads  []map[string]any `json:"squads"`
		Service struct {
			Submitted int64 `json:"Submitted"`
			Completed int64 `json:"Completed"`
		} `json:"service"`
		Health *struct {
			StalledWorkers int `json:"StalledWorkers"`
		} `json:"health"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("/statz is not valid JSON: %v\n%s", err, body)
	}
	if out.Scheduler.Spawns == 0 {
		t.Error("/statz scheduler.Spawns is zero after a fib(25) job")
	}
	if len(out.Squads) != 2 {
		t.Errorf("/statz squads: %d entries, want 2", len(out.Squads))
	}
	if out.Service.Submitted != 1 || out.Service.Completed != 1 {
		t.Errorf("/statz service counters %+v, want one submitted+completed", out.Service)
	}
	if out.Health == nil {
		t.Error("/statz missing health section")
	} else if out.Health.StalledWorkers != 0 {
		t.Errorf("/statz health reports %d stalled workers on a healthy server", out.Health.StalledWorkers)
	}
}

func TestFlowz(t *testing.T) {
	_, srv := testServer(t)
	if code, body := get(t, srv.URL+"/fib?n=28"); code != http.StatusOK {
		t.Fatalf("warm-up job failed: %d %s", code, body)
	}
	code, body := get(t, srv.URL+"/flowz")
	if code != http.StatusOK {
		t.Fatalf("/flowz status %d", code)
	}
	var p cab.Profile
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("/flowz is not valid JSON: %v\n%s", err, body)
	}
	if !p.Enabled {
		t.Fatal("/flowz reports profiling disabled on a -profile server")
	}
	if len(p.Workers) != 4 || len(p.Squads) != 2 {
		t.Fatalf("/flowz shape: %d workers / %d squads, want 4 / 2", len(p.Workers), len(p.Squads))
	}
	if len(p.Flow) != 2 || len(p.Flow[0]) != 2 {
		t.Fatalf("/flowz flow matrix is not 2x2: %v", p.Flow)
	}
	var exec time.Duration
	for _, sq := range p.Squads {
		exec += sq.Times.Exec
	}
	if exec == 0 {
		t.Error("/flowz shows zero exec time after a fib(28) job")
	}
}

func TestTracez(t *testing.T) {
	sched, srv := testServer(t)
	// Generate work concurrently with the trace window so it records spans.
	done := make(chan error, 1)
	go func() {
		_, err := http.Get(srv.URL + "/fib?n=30")
		done <- err
	}()
	code, body := get(t, srv.URL+"/tracez?ms=100")
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if sched.Tracing() {
		t.Fatal("/tracez left tracing armed")
	}
	var evs []map[string]any
	if err := json.Unmarshal([]byte(body), &evs); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var spans int
	for _, e := range evs {
		if e["ph"] == "X" {
			spans++
		}
	}
	if spans == 0 {
		t.Fatal("trace window over a running job recorded no spans")
	}
}

func TestTracezBadWindow(t *testing.T) {
	_, srv := testServer(t)
	for _, q := range []string{"ms=abc", "ms=0", "ms=-5"} {
		if code, _ := get(t, srv.URL+"/tracez?"+q); code != http.StatusBadRequest {
			t.Errorf("/tracez?%s: status %d, want 400", q, code)
		}
	}
}

func TestHealthz(t *testing.T) {
	_, srv := testServer(t)
	code, body := get(t, srv.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status %d: %s", code, body)
	}
	if !strings.Contains(body, `"status": "ok"`) {
		t.Fatalf("/healthz body %q", body)
	}
}

func TestReadyz(t *testing.T) {
	_, sv, srv := testServerFull(t, time.Millisecond)

	if code, body := get(t, srv.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz status %d: %s", code, body)
	}

	// Overload: a window whose queue-wait p95 is far past the 1ms target
	// flips the shedder; /readyz must report not-ready with Retry-After.
	sv.shed.observe(cab.LatencyWindow{
		QueueWait: cab.Latency{Count: 100, P95: 50 * time.Millisecond},
	})
	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while shedding: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("/readyz while shedding: no Retry-After header")
	}

	// Recovery: an idle window exits shedding (hysteresis path).
	sv.shed.observe(cab.LatencyWindow{})
	if code, _ := get(t, srv.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz after recovery: status %d, want 200", code)
	}

	// Draining beats everything.
	sv.draining.Store(true)
	code, body := get(t, srv.URL+"/readyz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("/readyz while draining: status %d body %q", code, body)
	}
}

func TestShedRefusesWork(t *testing.T) {
	_, sv, srv := testServerFull(t, time.Millisecond)
	sv.shed.observe(cab.LatencyWindow{
		QueueWait: cab.Latency{Count: 100, P95: 10 * time.Millisecond},
	})
	resp, err := http.Get(srv.URL + "/fib?n=20")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed work request: status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("shed response has no Retry-After")
	}
	if n := sv.shed.shedTotal.Load(); n != 1 {
		t.Fatalf("shedTotal = %d, want 1", n)
	}
	// Metrics must reflect the refusal and the active state.
	if _, body := get(t, srv.URL+"/metricz"); !strings.Contains(body, "cab_shed_total 1") ||
		!strings.Contains(body, "cab_shedding 1") {
		t.Fatalf("/metricz missing shed metrics:\n%s", body)
	}
	// After recovery the same endpoint serves again.
	sv.shed.observe(cab.LatencyWindow{})
	if code, body := get(t, srv.URL+"/fib?n=20"); code != http.StatusOK {
		t.Fatalf("post-recovery fib: status %d: %s", code, body)
	}
}

func TestShedObserveHysteresis(t *testing.T) {
	s := &shedder{target: 10 * time.Millisecond}

	// Too few samples: one slow job must not flip the state.
	s.observe(cab.LatencyWindow{QueueWait: cab.Latency{Count: 1, P95: time.Second}})
	if s.shedding() {
		t.Fatal("shedding after a 1-sample window")
	}
	// Enough samples over target: shed, with Retry-After scaled up.
	s.observe(cab.LatencyWindow{QueueWait: cab.Latency{Count: 50, P95: 100 * time.Millisecond}})
	if !s.shedding() {
		t.Fatal("not shedding with p95 10x target")
	}
	if ra := s.retryAfterSeconds(); ra != 10 {
		t.Fatalf("Retry-After = %d, want 10 (overload ratio)", ra)
	}
	// p95 under target but above target/2: hysteresis keeps shedding.
	s.observe(cab.LatencyWindow{QueueWait: cab.Latency{Count: 50, P95: 8 * time.Millisecond}})
	if !s.shedding() {
		t.Fatal("exited shedding above the hysteresis floor")
	}
	// Under half the target: recover.
	s.observe(cab.LatencyWindow{QueueWait: cab.Latency{Count: 50, P95: 4 * time.Millisecond}})
	if s.shedding() {
		t.Fatal("still shedding under target/2")
	}
}

func TestDumpz(t *testing.T) {
	_, srv := testServer(t)
	if code, body := get(t, srv.URL+"/fib?n=20"); code != http.StatusOK {
		t.Fatalf("warm-up job failed: %d %s", code, body)
	}
	code, body := get(t, srv.URL+"/dumpz")
	if code != http.StatusOK {
		t.Fatalf("/dumpz status %d", code)
	}
	for _, want := range []string{"=== rt state", "squad 0", "worker 0", "health:"} {
		if !strings.Contains(body, want) {
			t.Errorf("/dumpz missing %q\n--- body ---\n%s", want, body)
		}
	}
}

func TestPprofIndex(t *testing.T) {
	_, srv := testServer(t)
	code, body := get(t, srv.URL+"/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !strings.Contains(body, "goroutine") {
		t.Fatal("pprof index does not list profiles")
	}
}

// TestHealthzReadyzStalledWorker drives a real wedge through the live
// handlers: a frozen worker must flip both /healthz (stalled) and
// /readyz (degraded) to 503, and recovery must flip them back to 200.
// Supervision is disabled so the stall stays visible while we poll.
func TestHealthzReadyzStalledWorker(t *testing.T) {
	in := chaos.New(1)
	entered := in.FreezeWorker(2, cab.FaultExec)
	sched, err := cab.New(cab.Config{
		Machine:   cab.Machine{Sockets: 2, CoresPerSocket: 2, SharedCache: 1 << 20},
		FaultHook: in.Hook,
		Watchdog: cab.WatchdogConfig{
			Interval: 2 * time.Millisecond, StallAfter: 10 * time.Millisecond,
		},
		Supervisor: cab.SupervisorConfig{Disable: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	sv := newServer(sched, 0, time.Hour)
	srv := httptest.NewServer(sv.routes())
	t.Cleanup(func() { srv.Close(); sv.shed.close(); sched.Close() })
	t.Cleanup(in.UnfreezeAll) // LIFO: thaw before sched.Close drains

	// Stream tasks until worker 2 actually takes one into the freeze; a
	// fixed fanout could drain entirely on the other workers.
	job, err := sched.Submit(nil, func(tk cab.Task) {
		for i := 0; ; i++ {
			select {
			case <-entered:
				tk.Sync()
				return
			default:
				tk.Spawn(func(cab.Task) { time.Sleep(50 * time.Microsecond) })
				if i%64 == 63 {
					tk.Sync()
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	<-entered

	waitStatus := func(path string, want int, what string) string {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			code, body := get(t, srv.URL+path)
			if code == want {
				return body
			}
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s %d (%s); last: %d %s", path, want, what, code, body)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	if body := waitStatus("/healthz", http.StatusServiceUnavailable, "stall detection"); !strings.Contains(body, `"stalled"`) {
		t.Fatalf("/healthz 503 body %q, want status stalled", body)
	}
	if body := waitStatus("/readyz", http.StatusServiceUnavailable, "stall detection"); !strings.Contains(body, `"degraded"`) {
		t.Fatalf("/readyz 503 body %q, want status degraded", body)
	}

	in.UnfreezeAll()
	waitStatus("/healthz", http.StatusOK, "stall recovery")
	waitStatus("/readyz", http.StatusOK, "stall recovery")
	if err := job.Wait(); err != nil {
		t.Fatalf("job after thaw: %v", err)
	}
}

// TestHealthzReadyzQuarantine kills a worker under QuarantineAfter: 1 —
// one death quarantines its squad — and checks both probes report the
// degraded pool with 503 while work still completes.
func TestHealthzReadyzQuarantine(t *testing.T) {
	in := chaos.New(1)
	killed := in.KillWorker(0)
	sched, err := cab.New(cab.Config{
		Machine:   cab.Machine{Sockets: 2, CoresPerSocket: 2, SharedCache: 1 << 20},
		FaultHook: in.Hook,
		Watchdog: cab.WatchdogConfig{
			Interval: 2 * time.Millisecond, StallAfter: 10 * time.Millisecond,
		},
		Supervisor: cab.SupervisorConfig{QuarantineAfter: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	sv := newServer(sched, 0, time.Hour)
	srv := httptest.NewServer(sv.routes())
	t.Cleanup(func() { srv.Close(); sv.shed.close(); sched.Close() })

	// Kills fire at the victim's idle poll; keep trivial jobs flowing so
	// parked workers iterate.
	trivial := func(tk cab.Task) {
		for i := 0; i < 8; i++ {
			tk.Spawn(func(cab.Task) {})
		}
		tk.Sync()
	}
	deadline := time.After(5 * time.Second)
poke:
	for {
		select {
		case <-killed:
			break poke
		case <-deadline:
			t.Fatal("timed out waiting for the kill to fire")
		default:
			if j, err := sched.Submit(nil, trivial); err == nil {
				j.Wait()
			}
		}
	}

	wait := time.Now().Add(5 * time.Second)
	for {
		code, body := get(t, srv.URL+"/healthz")
		if code == http.StatusServiceUnavailable {
			if !strings.Contains(body, `"quarantined_squads": 1`) {
				t.Fatalf("/healthz 503 body %q, want quarantined_squads 1", body)
			}
			break
		}
		if time.Now().After(wait) {
			t.Fatalf("timed out waiting for /healthz quarantine 503; last: %d %s", code, body)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if code, body := get(t, srv.URL+"/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, `"degraded"`) {
		t.Fatalf("/readyz = %d %q, want 503 degraded", code, body)
	}
	// Degraded, not dead: the healthy squad still serves work.
	j, err := sched.Submit(nil, trivial)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(); err != nil {
		t.Fatal(err)
	}
}
