// Fault tolerance: the public face of the runtime's failure model
// (internal/rt's fault hook, watchdog and deadlines; see DESIGN.md §9).
//
//	sched, _ := cab.New(cab.Config{
//	    Watchdog: cab.WatchdogConfig{StallAfter: 500 * time.Millisecond},
//	})
//	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
//	defer cancel()
//	job, _ := sched.Submit(ctx, longDAG)
//	err := job.Wait() // errors.Is(err, cab.ErrDeadlineExceeded) past 50ms
//
//	h := sched.Health()
//	if h.StalledWorkers > 0 {
//	    sched.DumpState(os.Stderr)
//	}
package cab

import (
	"io"

	"cab/internal/jobs"
	"cab/internal/rt"
)

// FaultPoint identifies the class of runtime location a FaultHook fires
// at; FaultInfo describes the specific site. See rt's fault seam —
// internal/chaos builds deterministic injectors (stalls, slow steals,
// forced panics, worker freezes) on top of it.
type (
	FaultPoint = rt.FaultPoint
	FaultInfo  = rt.FaultInfo
	// FaultHook is invoked at the runtime's fault points when installed
	// via Config.FaultHook. nil costs one pointer nil-check per site; a
	// non-nil hook runs on scheduler workers, so whatever it does (sleep,
	// panic, block) is the injected fault.
	FaultHook = rt.FaultHook
)

// Fault point classes (see rt.FaultExec and friends).
const (
	// FaultExec fires right before a task body, inside the panic barrier.
	FaultExec = rt.FaultExec
	// FaultPoll fires at the top of each worker scheduling iteration.
	FaultPoll = rt.FaultPoll
	// FaultSteal fires before each steal probe.
	FaultSteal = rt.FaultSteal
)

// TaskPanic is the error Wait (and ParallelFor/Reduce) returns when a
// task body of the job panicked: the recovered value, the panicking
// task's DAG level, its job ID, and the captured stack. Panics are
// isolated per job — concurrent jobs on the same scheduler are unharmed.
type TaskPanic = rt.TaskPanic

// WatchdogConfig configures the runtime's stall/overrun/deadline monitor.
// The zero value enables it with defaults (250ms interval, 1s stall
// threshold); set Disable to turn monitoring off entirely.
type WatchdogConfig = rt.WatchdogConfig

// Health is the watchdog's snapshot of the runtime: currently stalled
// workers, cumulative stall/recovery/overrun/deadline counters, worker
// deaths and quarantined squads, and the live job load.
type Health = rt.Health

// SupervisorConfig configures worker supervision and replacement (see
// Config.Supervisor): how long a stalled worker may wedge before it is
// declared dead and replaced, how many deaths quarantine a squad, and an
// optional death observer. The zero value enables supervision with
// defaults.
type SupervisorConfig = rt.SupervisorConfig

// DeathInfo describes one worker death/replacement, passed to DeathHook.
type DeathInfo = rt.DeathInfo

// DeathHook observes worker deaths. It runs on the watchdog goroutine —
// a slow hook delays monitoring, never the workers.
type DeathHook = rt.DeathHook

// RetryPolicy re-admits failed jobs with exponential backoff and full
// jitter (see Config.Retry). Retries target task panics (TaskPanic,
// which injected flakes also produce); shed, cancelled and
// deadline-exceeded jobs are never retried.
type RetryPolicy = jobs.RetryPolicy

// SetDeathHook installs (or, with nil, removes) a worker-death observer
// on the live scheduler.
func (s *Scheduler) SetDeathHook(h DeathHook) { s.rt.SetDeathHook(h) }

// Quarantined reports whether squad sq is quarantined: its workers keep
// stealing and draining in-flight work but adopt no new root tasks.
func (s *Scheduler) Quarantined(sq int) bool { return s.rt.Quarantined(sq) }

// ErrDeadlineExceeded reports a job cancelled because its deadline passed
// — whether its context noticed first or the runtime's watchdog did. It
// wraps context.DeadlineExceeded, so errors.Is matches either sentinel.
var ErrDeadlineExceeded = jobs.ErrDeadlineExceeded

// Health reports the watchdog's view of the scheduler. With the watchdog
// disabled the counters stay zero but the job-load fields remain live.
func (s *Scheduler) Health() Health { return s.rt.Health() }

// DumpState writes a human-readable diagnostic of the live scheduler to
// w: per-worker heartbeat state (running/parked/stalled, current job and
// DAG level, deque depth), per-squad busy flags and inter-pool depths,
// the admission queue, running jobs with ages and deadlines, and the
// watchdog counters. Safe on a wedged pool — it is what the watchdog
// itself emits on a detection.
func (s *Scheduler) DumpState(w io.Writer) { s.rt.DumpState(w) }

// LatencySnapshot is an opaque point-in-time capture of the scheduler's
// latency histograms, used in pairs to compute windowed quantiles.
type LatencySnapshot struct {
	m metricsSnapshot
}

// LatencyWindow summarizes the latency distributions recorded between two
// snapshots — the windowed view overload control wants (cumulative
// histograms never forget; a shedder must).
type LatencyWindow struct {
	QueueWait Latency
	Run       Latency
	StealScan Latency
}

// LatencySnapshot captures the current histogram state.
func (s *Scheduler) LatencySnapshot() LatencySnapshot {
	return LatencySnapshot{m: s.rt.Metrics()}
}

// LatencySince summarizes the samples recorded since prev and returns the
// window plus the fresh snapshot to use as the next baseline:
//
//	win, snap = sched.LatencySince(snap)
//	if win.QueueWait.P95 > target { shed() }
func (s *Scheduler) LatencySince(prev LatencySnapshot) (LatencyWindow, LatencySnapshot) {
	cur := s.rt.Metrics()
	lat := func(sum obsSummary) Latency {
		return Latency{Count: sum.Count, Mean: sum.Mean, P50: sum.P50, P95: sum.P95, P99: sum.P99}
	}
	win := LatencyWindow{
		QueueWait: lat(cur.QueueWait.Delta(prev.m.QueueWait).Summary()),
		Run:       lat(cur.Run.Delta(prev.m.Run).Summary()),
		StealScan: lat(cur.StealScan.Delta(prev.m.StealScan).Summary()),
	}
	return win, LatencySnapshot{m: cur}
}
