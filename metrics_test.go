// Parser-based golden test for the Prometheus text exposition: instead
// of grepping for a few known lines, every emitted line is run through a
// small format-0.0.4 parser and checked against the rules scrapers rely
// on — TYPE headers precede their samples, label values are quoted and
// escaped, no series (name + label set) is emitted twice, histogram
// buckets are cumulative, and every sample value parses as a float.
package cab_test

import (
	"bytes"
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"cab"
)

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// promSample is one parsed sample line.
type promSample struct {
	name   string
	labels []string // "k=v" pairs, sorted — the series identity with name
	value  float64
	line   int
}

// parseProm parses Prometheus text format 0.0.4, failing the test on any
// malformed line. It returns the samples and the TYPE declarations in
// order of appearance.
func parseProm(t *testing.T, out string) (samples []promSample, types map[string]string, typeLine map[string]int) {
	t.Helper()
	types = map[string]string{}
	typeLine = map[string]int{}
	for i, line := range strings.Split(out, "\n") {
		n := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || !metricNameRe.MatchString(name) {
				t.Fatalf("line %d: malformed HELP: %q", n, line)
			}
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 || !metricNameRe.MatchString(fields[0]) {
				t.Fatalf("line %d: malformed TYPE: %q", n, line)
			}
			switch fields[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: unknown metric type %q", n, fields[1])
			}
			if _, dup := types[fields[0]]; dup {
				t.Fatalf("line %d: duplicate TYPE declaration for %s", n, fields[0])
			}
			types[fields[0]] = fields[1]
			typeLine[fields[0]] = n
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unknown comment form: %q", n, line)
		}
		samples = append(samples, parseSampleLine(t, n, line))
	}
	return samples, types, typeLine
}

// parseSampleLine parses `name{k="v",...} value` (labels optional).
func parseSampleLine(t *testing.T, n int, line string) promSample {
	t.Helper()
	s := promSample{line: n}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		s.name = rest[:i]
		rest = rest[i+1:]
		for {
			eq := strings.IndexByte(rest, '=')
			if eq < 0 || len(rest) <= eq+1 || rest[eq+1] != '"' {
				t.Fatalf("line %d: label value not quoted: %q", n, line)
			}
			lname := rest[:eq]
			if !labelNameRe.MatchString(lname) {
				t.Fatalf("line %d: bad label name %q in %q", n, lname, line)
			}
			// Scan the quoted value honouring \" \\ \n escapes — the
			// escaping rule the exporter must apply to hostile values.
			val, tail, err := scanQuoted(rest[eq+1:])
			if err != nil {
				t.Fatalf("line %d: %v in %q", n, err, line)
			}
			s.labels = append(s.labels, lname+"="+val)
			rest = tail
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
				continue
			}
			if strings.HasPrefix(rest, "} ") {
				rest = rest[2:]
				break
			}
			t.Fatalf("line %d: malformed label block: %q", n, line)
		}
	} else {
		name, v, ok := strings.Cut(rest, " ")
		if !ok {
			t.Fatalf("line %d: no value: %q", n, line)
		}
		s.name, rest = name, v
	}
	if !metricNameRe.MatchString(s.name) {
		t.Fatalf("line %d: bad metric name %q", n, s.name)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		if strings.TrimSpace(rest) != "+Inf" && strings.TrimSpace(rest) != "-Inf" && strings.TrimSpace(rest) != "NaN" {
			t.Fatalf("line %d: sample value %q does not parse: %v", n, rest, err)
		}
	}
	s.value = v
	sort.Strings(s.labels)
	return s
}

// scanQuoted consumes a double-quoted string with \\, \", \n escapes and
// returns its raw contents plus the remaining input.
func scanQuoted(in string) (val, rest string, err error) {
	if !strings.HasPrefix(in, `"`) {
		return "", "", fmt.Errorf("label value not quoted")
	}
	var b strings.Builder
	for i := 1; i < len(in); i++ {
		switch in[i] {
		case '\\':
			i++
			if i >= len(in) {
				return "", "", fmt.Errorf("dangling escape")
			}
			switch in[i] {
			case '\\', '"', 'n':
				b.WriteByte(in[i])
			default:
				return "", "", fmt.Errorf("invalid escape \\%c", in[i])
			}
		case '"':
			return b.String(), in[i+1:], nil
		case '\n':
			return "", "", fmt.Errorf("unescaped newline in label value")
		default:
			b.WriteByte(in[i])
		}
	}
	return "", "", fmt.Errorf("unterminated label value")
}

// baseFamily maps a sample name to the family its TYPE header declares
// (histogram samples use the base name + _bucket/_sum/_count).
func baseFamily(name string, types map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name {
			if types[base] == "histogram" || types[base] == "summary" {
				return base
			}
		}
	}
	return name
}

func TestWritePrometheusWellFormed(t *testing.T) {
	sched, err := cab.New(cab.Config{
		Machine: cab.Machine{Sockets: 2, CoresPerSocket: 2, SharedCache: 1 << 20},
		// BL > 0 so the squad/flow series carry the two-tier structure.
		DataSize: 1 << 20, Branch: 2,
		Profile: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sched.Close()
	// Put real traffic through so counters and histograms are non-trivial.
	var fib func(n int) cab.TaskFunc
	fib = func(n int) cab.TaskFunc {
		return func(tk cab.Task) {
			if n < 2 {
				return
			}
			tk.Spawn(fib(n - 1))
			tk.Spawn(fib(n - 2))
			tk.Sync()
		}
	}
	if err := sched.Run(fib(15)); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	sched.WritePrometheus(&buf)
	out := buf.String()
	samples, types, typeLine := parseProm(t, out)
	if len(samples) == 0 {
		t.Fatal("exporter emitted no samples")
	}

	// Rule: every sample's family has a TYPE header, and it precedes the
	// sample.
	for _, s := range samples {
		fam := baseFamily(s.name, types)
		tl, ok := typeLine[fam]
		if !ok {
			t.Errorf("line %d: sample %s has no TYPE header (family %s)", s.line, s.name, fam)
			continue
		}
		if tl > s.line {
			t.Errorf("line %d: sample %s precedes its TYPE header at line %d", s.line, s.name, tl)
		}
	}

	// Rule: no duplicate series — a (name, label set) pair appears once.
	seen := map[string]int{}
	for _, s := range samples {
		key := s.name + "|" + strings.Join(s.labels, ",")
		if prev, dup := seen[key]; dup {
			t.Errorf("line %d: duplicate series %s (first at line %d)", s.line, key, prev)
		}
		seen[key] = s.line
	}

	// Rule: histogram buckets are cumulative and _count matches +Inf.
	for fam, typ := range types {
		if typ != "histogram" {
			continue
		}
		var prev float64
		var inf, count float64
		for _, s := range samples {
			switch s.name {
			case fam + "_bucket":
				if s.value < prev {
					t.Errorf("line %d: %s buckets not cumulative (%g after %g)", s.line, fam, s.value, prev)
				}
				prev = s.value
				for _, l := range s.labels {
					if l == `le=+Inf` {
						inf = s.value
					}
				}
			case fam + "_count":
				count = s.value
			}
		}
		if inf != count {
			t.Errorf("%s: +Inf bucket %g != _count %g", fam, inf, count)
		}
	}

	// The new profile series must be present with their availability
	// gauges (hwc series themselves are host-dependent).
	for _, want := range []string{
		"cab_profiling_armed", "cab_hwc_available",
		"cab_squad_state_seconds_total", "cab_steal_flow_probes_total",
		"cab_steal_flow_hits_total", "cab_steal_flow_frames_total",
	} {
		if _, ok := types[want]; !ok {
			t.Errorf("profile series %s missing from exposition", want)
		}
	}
	// 2 squads × 5 states and a 2×2 flow matrix, every cell emitted.
	if n := strings.Count(out, "cab_squad_state_seconds_total{"); n != 10 {
		t.Errorf("squad state series: %d samples, want 10", n)
	}
	if n := strings.Count(out, "cab_steal_flow_probes_total{"); n != 4 {
		t.Errorf("flow probe series: %d samples, want 4", n)
	}
}

// TestPromLabelEscaping pins the label-escaping rule the parser above
// enforces, using obs's exported writers through a scheduler-free path:
// a hostile label value (quotes, backslashes) must arrive escaped.
func TestPromLabelEscaping(t *testing.T) {
	sched, err := cab.New(cab.Config{
		Machine: cab.Machine{Sockets: 1, CoresPerSocket: 1, SharedCache: 1 << 20},
		Profile: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sched.Close()
	if err := sched.Run(func(tk cab.Task) {}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(time.Millisecond)
	var buf bytes.Buffer
	sched.WritePrometheus(&buf)
	// Every quoted label value in real output must survive the strict
	// scanner (parseProm already ran it; here we pin that quotes exist at
	// all — an exporter emitting bare label values would pass a laxer
	// parser).
	if !strings.Contains(buf.String(), `{squad="0",state="exec"}`) {
		t.Fatalf("expected quoted two-label sample in output:\n%s", buf.String())
	}
}
