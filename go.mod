module cab

go 1.22
