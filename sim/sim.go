// Package sim runs CAB programs on a simulated multi-socket multi-core
// machine and reports what the paper's testbed measured: execution time
// (virtual cycles) and L2/L3 cache misses.
//
// The simulated machine has per-core private L1/L2 caches, one shared L3
// per socket, and a discrete-event engine that charges every Compute /
// Load / Store annotation (see cab.Task) to the executing core's clock,
// pricing memory actions through set-associative LRU caches. Four
// schedulers are available: the paper's CAB, the MIT-Cilk-style random
// stealer it compares against, a central-pool task-sharing baseline, and a
// SLAW-style adaptive baseline. Runs are fully deterministic for a given
// Config.
package sim

import (
	"fmt"
	"io"

	"cab"
	"cab/internal/cache"
	"cab/internal/core"
	"cab/internal/simengine"
	"cab/internal/simsched"
	"cab/internal/topology"
	"cab/internal/trace"
)

// SchedulerKind selects the scheduling policy of a simulated run.
type SchedulerKind int

const (
	// CAB is the paper's cache-aware bi-tier task-stealing scheduler.
	CAB SchedulerKind = iota
	// Cilk is traditional random task-stealing (the paper's baseline).
	Cilk
	// Sharing is the central-pool task-sharing baseline of §II.
	Sharing
	// SLAW is an adaptive-policy stealing baseline in the spirit of the
	// SLAW scheduler the paper's related work discusses: it mixes
	// child-first and parent-first spawns by runtime conditions rather
	// than by DAG tier, and has no socket awareness.
	SLAW
)

// String names the scheduler as it appears in reports.
func (k SchedulerKind) String() string {
	switch k {
	case CAB:
		return "cab"
	case Cilk:
		return "cilk"
	case Sharing:
		return "sharing"
	case SLAW:
		return "slaw"
	default:
		return fmt.Sprintf("SchedulerKind(%d)", int(k))
	}
}

// Machine describes the simulated MSMC hardware. The zero value of any
// field takes the paper's Opteron 8380 value.
type Machine struct {
	Sockets        int
	CoresPerSocket int
	L1Bytes        int64
	L2Bytes        int64 // private per core
	L3Bytes        int64 // shared per socket (Sc)
	LineBytes      int64
}

// Opteron8380 returns the paper's evaluation machine.
func Opteron8380() Machine {
	return Machine{Sockets: 4, CoresPerSocket: 4,
		L1Bytes: 64 << 10, L2Bytes: 512 << 10, L3Bytes: 6 << 20, LineBytes: 64}
}

func (m Machine) topology() topology.Topology {
	d := topology.Opteron8380()
	t := topology.Topology{
		Sockets: m.Sockets, CoresPerSocket: m.CoresPerSocket,
		LineBytes: m.LineBytes,
		L1Bytes:   m.L1Bytes, L1Assoc: d.L1Assoc,
		L2Bytes: m.L2Bytes, L2Assoc: d.L2Assoc,
		L3Bytes: m.L3Bytes, L3Assoc: d.L3Assoc,
	}
	if t.Sockets == 0 {
		t.Sockets = d.Sockets
	}
	if t.CoresPerSocket == 0 {
		t.CoresPerSocket = d.CoresPerSocket
	}
	if t.LineBytes == 0 {
		t.LineBytes = d.LineBytes
	}
	if t.L1Bytes == 0 {
		t.L1Bytes = d.L1Bytes
	}
	if t.L2Bytes == 0 {
		t.L2Bytes = d.L2Bytes
	}
	if t.L3Bytes == 0 {
		t.L3Bytes = d.L3Bytes
	}
	return t
}

// Options are the CAB implementation toggles exercised by the ablation
// experiments; the zero value is the configuration used everywhere else.
type Options struct {
	// RandomVictims selects steal victims uniformly at random (Algorithm
	// I's literal reading) instead of deterministic cyclic probing.
	RandomVictims bool
	// AllWorkersStealInter lifts the head-worker-only restriction.
	AllWorkersStealInter bool
	// IgnoreBusyState disables the one-inter-task-per-squad rule.
	IgnoreBusyState bool
	// IgnoreHints disables SpawnHint placement (inter_spawn), leaving
	// only the automatic partitioning.
	IgnoreHints bool
}

// Config assembles a simulated run.
type Config struct {
	Machine   Machine
	Scheduler SchedulerKind
	// BoundaryLevel: >= 0 forces a BL (sweep experiments); -1 selects
	// Eq. 4 from DataSize and Branch. CAB only; other schedulers run
	// single-tier regardless.
	BoundaryLevel int
	DataSize      int64
	Branch        int
	Seed          uint64
	Options       Options
	// TrackFootprint additionally records per-socket memory footprints
	// (slower; one hash entry per distinct line per socket).
	TrackFootprint bool
	// Trace, when non-nil, receives a Chrome trace-viewer JSON of the
	// run's per-core schedule (open in chrome://tracing or
	// ui.perfetto.dev).
	Trace io.Writer
}

// Report is what a simulated run measures — the software counterpart of
// the paper's wall clock and PMU counters.
type Report struct {
	Scheduler string
	BL        int

	Cycles int64 // makespan of the run in CPU cycles

	L2Accesses int64
	L2Misses   int64
	L3Accesses int64
	L3Misses   int64

	Tasks          int64
	LeafInterTasks int64
	StealsIntra    int64
	StealsInter    int64
	FailedSteals   int64
	MaxTasksLive   int // peak in-flight tasks (space bound, Eq. 15)

	Utilization    float64 // busy cycles / (cycles * cores)
	InterTierShare float64 // inter-socket tier's share of total work
	MemoryShare    float64 // share of work cycles spent in the memory system

	// CriticalPath is T_inf(G): the longest dependency chain of charged
	// cycles (§III-E); Cycles/CriticalPath bounds attainable speedup.
	CriticalPath int64
	// PrefetchedLines counts lines installed by Prefetch annotations.
	PrefetchedLines int64

	// SocketL3Accesses / SocketL3Misses break the shared-cache counters
	// down per socket (L3Accesses / L3Misses are their sums). The
	// data-parallel locality experiments read these: squad-affine
	// partition placement keeps each partition's working set in one
	// socket's L3, so every socket shows fewer misses than under
	// placement-oblivious round-robin dealing of the same work.
	SocketL3Accesses []int64
	SocketL3Misses   []int64

	// FootprintBytes per socket and total (-1 when not tracked).
	SocketFootprint []int64
	FootprintBytes  int64
}

// Run executes root (a cab.TaskFunc, level 0) on the simulated machine.
func Run(cfg Config, root cab.TaskFunc) (Report, error) {
	topo := cfg.Machine.topology()
	bl := 0
	if cfg.Scheduler == CAB {
		bl = cfg.BoundaryLevel
		if bl < 0 {
			branch := cfg.Branch
			if branch == 0 {
				branch = 2
			}
			var err error
			bl, err = core.BoundaryLevel(core.Params{
				Branch:      branch,
				Sockets:     topo.Sockets,
				InputBytes:  cfg.DataSize,
				SharedCache: topo.SharedCacheBytes(),
			})
			if err != nil {
				return Report{}, fmt.Errorf("sim: %w", err)
			}
		}
	}
	var sched simengine.Scheduler
	switch cfg.Scheduler {
	case CAB:
		sched = simsched.NewCABOpts(simsched.CABOptions{
			RandomInterVictim:    cfg.Options.RandomVictims,
			AllWorkersStealInter: cfg.Options.AllWorkersStealInter,
			IgnoreBusyState:      cfg.Options.IgnoreBusyState,
			IgnoreHints:          cfg.Options.IgnoreHints,
		})
	case Cilk:
		sched = simsched.NewCilk()
	case Sharing:
		sched = simsched.NewSharing()
	case SLAW:
		sched = simsched.NewSLAW()
	default:
		return Report{}, fmt.Errorf("sim: unknown scheduler %v", cfg.Scheduler)
	}
	var rec *trace.Recorder
	if cfg.Trace != nil {
		rec = trace.NewRecorder()
	}
	eng, err := simengine.New(simengine.Config{
		Topo:    topo,
		Latency: cache.DefaultLatency(),
		Cost:    simengine.DefaultCost(),
		Cache:   cache.Options{TrackFootprint: cfg.TrackFootprint},
		Seed:    cfg.Seed,
		BL:      bl,
		Tracer:  rec,
	}, sched)
	if err != nil {
		return Report{}, fmt.Errorf("sim: %w", err)
	}
	st, err := eng.Run(root)
	if err != nil {
		return Report{}, fmt.Errorf("sim: %w", err)
	}
	if rec != nil {
		if werr := rec.WriteChrome(cfg.Trace); werr != nil {
			return Report{}, fmt.Errorf("sim: writing trace: %w", werr)
		}
	}
	sockL3A := make([]int64, len(st.SocketL3))
	sockL3M := make([]int64, len(st.SocketL3))
	for s, c := range st.SocketL3 {
		sockL3A[s] = c.Accesses
		sockL3M[s] = c.Misses
	}
	return Report{
		Scheduler:        st.Scheduler,
		BL:               st.BL,
		Cycles:           st.Time,
		L2Accesses:       st.Cache.L2.Accesses,
		L2Misses:         st.Cache.L2.Misses,
		L3Accesses:       st.Cache.L3.Accesses,
		L3Misses:         st.Cache.L3.Misses,
		Tasks:            st.Tasks,
		LeafInterTasks:   st.LeafInterTasks,
		StealsIntra:      st.StealsIntra,
		StealsInter:      st.StealsInter,
		FailedSteals:     st.FailedSteals,
		MaxTasksLive:     st.MaxInFlight,
		CriticalPath:     st.CriticalPath,
		PrefetchedLines:  st.PrefetchedLines,
		Utilization:      st.Utilization(),
		InterTierShare:   st.InterTierShare(),
		MemoryShare:      st.MemoryBoundShare(),
		SocketL3Accesses: sockL3A,
		SocketL3Misses:   sockL3M,
		SocketFootprint:  st.SocketFootprint,
		FootprintBytes:   st.FootprintBytes,
	}, nil
}
