package sim_test

import (
	"fmt"
	"log"

	"cab"
	"cab/sim"
)

// Example runs the same memory-bound kernel under the traditional random
// task-stealer and under CAB on the simulated 4-socket machine, showing
// the TRICI effect the paper measures: CAB needs fewer cycles and far
// fewer shared-cache misses.
func Example() {
	kernel := func() cab.TaskFunc { return stencilish(512, 4096, 6, 64) }

	cilk, err := sim.Run(sim.Config{
		Scheduler: sim.Cilk, Seed: 42,
		DataSize: 512 * 4096, Branch: 2, BoundaryLevel: -1,
	}, kernel())
	if err != nil {
		log.Fatal(err)
	}
	cabRep, err := sim.Run(sim.Config{
		Scheduler: sim.CAB, Seed: 42,
		DataSize: 512 * 4096, Branch: 2, BoundaryLevel: -1,
	}, kernel())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cab faster:", cabRep.Cycles < cilk.Cycles)
	fmt.Println("cab fewer L3 misses:", cabRep.L3Misses < cilk.L3Misses)
	// Output:
	// cab faster: true
	// cab fewer L3 misses: true
}
