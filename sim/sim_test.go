package sim_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"cab"
	"cab/sim"
)

// stencilish is a small iterative kernel with paper-heat structure: region
// annotated row loads/stores, recursive split, several timesteps.
func stencilish(rows, rowBytes, steps, leaf int) cab.TaskFunc {
	var split func(rootLo, rootHi, lo, hi int) cab.TaskFunc
	split = func(rootLo, rootHi, lo, hi int) cab.TaskFunc {
		return func(p cab.Task) {
			if hi-lo <= leaf {
				for r := lo; r < hi; r++ {
					p.Load(uint64(4096+r*rowBytes), int64(rowBytes))
					p.Compute(64)
					p.Store(uint64(4096+rows*rowBytes+r*rowBytes), int64(rowBytes))
				}
				return
			}
			mid := (lo + hi) / 2
			m := p.Squads()
			hint := func(l, h int) int { return (l + h) / 2 * m / rows }
			p.SpawnHint(hint(lo, mid), split(rootLo, rootHi, lo, mid))
			p.SpawnHint(hint(mid, hi), split(rootLo, rootHi, mid, hi))
			p.Sync()
		}
	}
	return func(p cab.Task) {
		for s := 0; s < steps; s++ {
			p.Spawn(split(0, rows, 0, rows))
			p.Sync()
		}
	}
}

func TestRunAllSchedulers(t *testing.T) {
	root := stencilish(256, 512, 3, 32)
	for _, k := range []sim.SchedulerKind{sim.CAB, sim.Cilk, sim.Sharing, sim.SLAW} {
		rep, err := sim.Run(sim.Config{
			Scheduler:     k,
			BoundaryLevel: -1,
			DataSize:      256 * 512,
			Branch:        2,
			Seed:          1,
		}, root)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if rep.Cycles <= 0 || rep.Tasks == 0 {
			t.Errorf("%v: empty report %+v", k, rep)
		}
		if rep.Scheduler != k.String() {
			t.Errorf("scheduler name %q != %q", rep.Scheduler, k.String())
		}
	}
}

func TestDeterministicReports(t *testing.T) {
	cfgs := sim.Config{Scheduler: sim.CAB, BoundaryLevel: -1, DataSize: 256 * 512, Branch: 2, Seed: 9}
	a, err := sim.Run(cfgs, stencilish(256, 512, 3, 32))
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.Run(cfgs, stencilish(256, 512, 3, 32))
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.L3Misses != b.L3Misses || a.StealsIntra != b.StealsIntra {
		t.Fatalf("reports diverged: %+v vs %+v", a, b)
	}
}

// The headline claim, through the public API: on an iterative memory-bound
// kernel whose per-socket share fits the shared cache, CAB beats random
// stealing on both time and L3 misses.
func TestCABBeatsCilkOnMemoryBoundKernel(t *testing.T) {
	root := func() cab.TaskFunc { return stencilish(512, 4096, 6, 64) }
	base := sim.Config{BoundaryLevel: -1, DataSize: 512 * 4096, Branch: 2, Seed: 42}

	cfgCilk := base
	cfgCilk.Scheduler = sim.Cilk
	cilk, err := sim.Run(cfgCilk, root())
	if err != nil {
		t.Fatal(err)
	}
	cfgCAB := base
	cfgCAB.Scheduler = sim.CAB
	cabRep, err := sim.Run(cfgCAB, root())
	if err != nil {
		t.Fatal(err)
	}
	if cabRep.Cycles >= cilk.Cycles {
		t.Errorf("CAB cycles %d not below Cilk %d", cabRep.Cycles, cilk.Cycles)
	}
	if cabRep.L3Misses >= cilk.L3Misses {
		t.Errorf("CAB L3 misses %d not below Cilk %d", cabRep.L3Misses, cilk.L3Misses)
	}
}

func TestBoundaryLevelOverrideAndReport(t *testing.T) {
	rep, err := sim.Run(sim.Config{
		Scheduler:     sim.CAB,
		BoundaryLevel: 2,
		Seed:          3,
	}, stencilish(256, 512, 2, 32))
	if err != nil {
		t.Fatal(err)
	}
	if rep.BL != 2 {
		t.Fatalf("report BL = %d, want 2", rep.BL)
	}
	if rep.LeafInterTasks == 0 {
		t.Error("no leaf inter tasks at BL=2")
	}
}

func TestFootprintTracking(t *testing.T) {
	rep, err := sim.Run(sim.Config{
		Scheduler:      sim.CAB,
		BoundaryLevel:  -1,
		DataSize:       256 * 512,
		Branch:         2,
		Seed:           1,
		TrackFootprint: true,
	}, stencilish(256, 512, 2, 32))
	if err != nil {
		t.Fatal(err)
	}
	if rep.FootprintBytes <= 0 {
		t.Fatalf("FootprintBytes = %d, want > 0", rep.FootprintBytes)
	}
	if len(rep.SocketFootprint) != 4 {
		t.Fatalf("SocketFootprint has %d entries, want 4", len(rep.SocketFootprint))
	}
}

// TestSocketL3Breakdown: the per-socket L3 counters are a partition of
// the totals — one entry per socket, summing exactly to L3Accesses /
// L3Misses.
func TestSocketL3Breakdown(t *testing.T) {
	rep, err := sim.Run(sim.Config{
		Scheduler:     sim.CAB,
		BoundaryLevel: 1,
		Seed:          1,
	}, stencilish(256, 512, 2, 32))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.SocketL3Accesses) != 4 || len(rep.SocketL3Misses) != 4 {
		t.Fatalf("per-socket L3 slices have %d/%d entries, want 4/4",
			len(rep.SocketL3Accesses), len(rep.SocketL3Misses))
	}
	var acc, miss int64
	for s := range rep.SocketL3Accesses {
		acc += rep.SocketL3Accesses[s]
		miss += rep.SocketL3Misses[s]
	}
	if acc != rep.L3Accesses || miss != rep.L3Misses {
		t.Fatalf("per-socket sums %d/%d != totals %d/%d",
			acc, miss, rep.L3Accesses, rep.L3Misses)
	}
	if miss == 0 {
		t.Fatal("no L3 misses recorded at all")
	}
}

func TestUnknownScheduler(t *testing.T) {
	if _, err := sim.Run(sim.Config{Scheduler: sim.SchedulerKind(99)}, func(cab.Task) {}); err == nil {
		t.Fatal("expected error for unknown scheduler")
	}
}

func TestSchedulerKindStrings(t *testing.T) {
	if sim.CAB.String() != "cab" || sim.Cilk.String() != "cilk" ||
		sim.Sharing.String() != "sharing" || sim.SLAW.String() != "slaw" {
		t.Fatal("SchedulerKind strings wrong")
	}
	if sim.SchedulerKind(99).String() == "" {
		t.Fatal("unknown kind should still render")
	}
}

func TestCustomMachine(t *testing.T) {
	rep, err := sim.Run(sim.Config{
		Machine:   sim.Machine{Sockets: 2, CoresPerSocket: 2, L3Bytes: 1 << 20},
		Scheduler: sim.Cilk,
		Seed:      1,
	}, stencilish(128, 256, 1, 32))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cycles == 0 {
		t.Fatal("no cycles")
	}
}

func TestTraceOutput(t *testing.T) {
	var buf bytes.Buffer
	_, err := sim.Run(sim.Config{
		Scheduler: sim.CAB, BoundaryLevel: 2, Seed: 1, Trace: &buf,
	}, stencilish(128, 256, 1, 32))
	if err != nil {
		t.Fatal(err)
	}
	var evs []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(evs) < 4 {
		t.Fatalf("trace has %d events, expected a schedule", len(evs))
	}
	spans := 0
	for _, e := range evs {
		if e["ph"] == "X" {
			spans++
		}
	}
	if spans == 0 {
		t.Fatal("no execution spans in trace")
	}
}

func TestReportCriticalPath(t *testing.T) {
	rep, err := sim.Run(sim.Config{Scheduler: sim.CAB, BoundaryLevel: 2, Seed: 1},
		stencilish(128, 256, 2, 32))
	if err != nil {
		t.Fatal(err)
	}
	if rep.CriticalPath <= 0 || rep.CriticalPath > rep.Cycles {
		t.Fatalf("CriticalPath = %d outside (0, Cycles=%d]", rep.CriticalPath, rep.Cycles)
	}
}
