package cab

import (
	"time"

	"cab/internal/obs"
	"cab/internal/rt"
)

// StateTimes is a worker's (or squad's) accumulated wall time per
// scheduler state — the time-in-state half of the profile. The five
// states partition a worker's life: executing task bodies, scanning
// squad-mates' deques, scanning remote squads' pools, waiting at the
// admission seam for root work, and parked on the eventcount.
type StateTimes struct {
	Exec      time.Duration `json:"exec"`
	ScanIntra time.Duration `json:"scan_intra"`
	ScanInter time.Duration `json:"scan_inter"`
	Park      time.Duration `json:"park"`
	AdmitWait time.Duration `json:"admit_wait"`
}

// Total sums all states.
func (t StateTimes) Total() time.Duration {
	return t.Exec + t.ScanIntra + t.ScanInter + t.Park + t.AdmitWait
}

func stateTimes(w obs.WorkerTimes) StateTimes {
	return StateTimes{
		Exec:      time.Duration(w[obs.StateExec]),
		ScanIntra: time.Duration(w[obs.StateScanIntra]),
		ScanInter: time.Duration(w[obs.StateScanInter]),
		Park:      time.Duration(w[obs.StatePark]),
		AdmitWait: time.Duration(w[obs.StateAdmitWait]),
	}
}

// FlowCell is one entry of the squad×squad steal-flow matrix: probes the
// thief squad issued against the victim squad, probes that found work,
// and task frames moved.
type FlowCell struct {
	Probes int64 `json:"probes"`
	Hits   int64 `json:"hits"`
	Frames int64 `json:"frames"`
}

// HWCounters is a hardware-counter reading (cumulative since worker
// start). Valid reports whether a perf group is attached at all; the
// per-counter Has* flags mark events that failed to open individually
// (e.g. LLC events under a VM's limited PMU) — those counters read 0 and
// should be displayed as absent, not zero.
type HWCounters struct {
	Cycles       uint64 `json:"cycles"`
	Instructions uint64 `json:"instructions"`
	LLCLoads     uint64 `json:"llc_loads"`
	LLCMisses    uint64 `json:"llc_misses"`

	Valid           bool `json:"valid"`
	HasCycles       bool `json:"has_cycles"`
	HasInstructions bool `json:"has_instructions"`
	HasLLCLoads     bool `json:"has_llc_loads"`
	HasLLCMisses    bool `json:"has_llc_misses"`
}

// WorkerProfile is one worker's slice of the profile.
type WorkerProfile struct {
	Worker int        `json:"worker"`
	Squad  int        `json:"squad"`
	State  string     `json:"state"` // current state: "exec", "scan_intra", ...
	Times  StateTimes `json:"times"`
	HW     HWCounters `json:"hw"`
}

// SquadProfile rolls the worker profiles up per squad (= per socket).
type SquadProfile struct {
	Squad int        `json:"squad"`
	Times StateTimes `json:"times"`
	HW    HWCounters `json:"hw"`
}

// Profile is the scheduler X-ray: per-worker and per-squad time-in-state
// accounting, the squad×squad steal-flow matrix, and hardware counters
// where the host grants them. Snapshots are cumulative; diff two to
// window a load interval (cabtop renders exactly that delta).
type Profile struct {
	// Enabled reports whether software accounting is armed. Disarmed,
	// state times and the flow matrix stay frozen at their last values.
	Enabled bool `json:"enabled"`
	// HWCAvailable is the explicit degradation signal: false means no
	// worker could attach perf counters (non-Linux, no permissions, no
	// PMU) and the profile is software-only — exported on /metricz as
	// cab_hwc_available 0.
	HWCAvailable bool            `json:"hwc_available"`
	Workers      []WorkerProfile `json:"workers"`
	Squads       []SquadProfile  `json:"squads"`
	// Flow[i][j]: squad i stealing from squad j. The diagonal is the
	// intra-socket distance class, off-diagonal the inter-socket class.
	// With accounting armed since New, row i's Hits sum equals squad i's
	// StealsIntra+StealsInter.
	Flow [][]FlowCell `json:"flow"`
}

func hwCounters(p rt.WorkerProfile) HWCounters {
	return HWCounters{
		Cycles: p.HW.Cycles, Instructions: p.HW.Instructions,
		LLCLoads: p.HW.LLCLoads, LLCMisses: p.HW.LLCMisses,
		Valid:     p.HWOk,
		HasCycles: p.HW.HasCycles, HasInstructions: p.HW.HasInstructions,
		HasLLCLoads: p.HW.HasLLCLoads, HasLLCMisses: p.HW.HasLLCMisses,
	}
}

// Profile snapshots the profiling state — see the Profile type. Cheap
// enough to poll: atomic loads plus one read syscall per attached
// hardware counter.
func (s *Scheduler) Profile() Profile {
	rp := s.rt.Profile()
	p := Profile{
		Enabled:      rp.Enabled,
		HWCAvailable: rp.HWCAvailable,
		Workers:      make([]WorkerProfile, len(rp.Workers)),
		Squads:       make([]SquadProfile, len(rp.Squads)),
		Flow:         make([][]FlowCell, len(rp.Flow)),
	}
	for i, wp := range rp.Workers {
		p.Workers[i] = WorkerProfile{
			Worker: wp.Worker, Squad: wp.Squad, State: wp.State,
			Times: stateTimes(wp.Times), HW: hwCounters(wp),
		}
	}
	for i, sp := range rp.Squads {
		p.Squads[i] = SquadProfile{
			Squad: sp.Squad, Times: stateTimes(sp.Times),
			HW: HWCounters{
				Cycles: sp.HW.Cycles, Instructions: sp.HW.Instructions,
				LLCLoads: sp.HW.LLCLoads, LLCMisses: sp.HW.LLCMisses,
				Valid:     sp.HWOk,
				HasCycles: sp.HW.HasCycles, HasInstructions: sp.HW.HasInstructions,
				HasLLCLoads: sp.HW.HasLLCLoads, HasLLCMisses: sp.HW.HasLLCMisses,
			},
		}
	}
	for i, row := range rp.Flow {
		cells := make([]FlowCell, len(row))
		for j, c := range row {
			cells[j] = FlowCell{Probes: c.Probes, Hits: c.Hits, Frames: c.Frames}
		}
		p.Flow[i] = cells
	}
	return p
}

// StartProfile arms time-in-state and steal-flow accounting on a live
// scheduler. In-progress state segments begin at the moment of arming;
// flow counters resume from their previous totals (so the
// row-sum == steals invariant only holds when armed since New).
func (s *Scheduler) StartProfile() { s.rt.EnableProfiling() }

// StopProfile disarms accounting, settling in-progress segments. The
// frozen profile remains readable via Profile.
func (s *Scheduler) StopProfile() { s.rt.DisableProfiling() }

// Profiling reports whether accounting is armed.
func (s *Scheduler) Profiling() bool { return s.rt.Profiling() }
