// Heat: the paper's running example on the simulated MSMC machine.
//
// The same task function runs under the traditional random task-stealer
// (MIT-Cilk style) and under CAB, and the program prints the comparison
// the paper's Figure 4 and Table IV make: execution time and L2/L3 cache
// misses. Because the machine is simulated, the run is deterministic and
// works on any host.
//
//	go run ./examples/heat [-rows 512] [-cols 512] [-steps 10]
package main

import (
	"flag"
	"fmt"
	"log"

	"cab"
	"cab/sim"
)

func main() {
	rows := flag.Int("rows", 512, "grid rows")
	cols := flag.Int("cols", 512, "grid columns")
	steps := flag.Int("steps", 10, "timesteps")
	flag.Parse()

	grid := make([]float64, (*rows)*(*cols))
	next := make([]float64, (*rows)*(*cols))
	for c := 0; c < *cols; c++ {
		grid[c] = 100 // hot top edge
		next[c] = 100
	}

	fmt.Printf("five-point heat, %dx%d, %d steps on a simulated 4-socket x 4-core machine\n\n",
		*rows, *cols, *steps)

	var reports []sim.Report
	for _, kind := range []sim.SchedulerKind{sim.Cilk, sim.CAB} {
		rep, err := sim.Run(sim.Config{
			Scheduler:     kind,
			BoundaryLevel: -1, // Eq. 4
			DataSize:      int64(*rows) * int64(*cols) * 8,
			Branch:        2,
			Seed:          42,
		}, heatProgram(grid, next, *rows, *cols, *steps))
		if err != nil {
			log.Fatal(err)
		}
		reports = append(reports, rep)
		fmt.Printf("%-5s BL=%d  time=%12d cycles  L2 misses=%9d  L3 misses=%9d  util=%.2f\n",
			rep.Scheduler, rep.BL, rep.Cycles, rep.L2Misses, rep.L3Misses, rep.Utilization)
	}
	cilk, cabRep := reports[0], reports[1]
	fmt.Printf("\nCAB vs Cilk: %.1f%% faster, %.1f%% fewer L3 misses (the TRICI effect)\n",
		100*float64(cilk.Cycles-cabRep.Cycles)/float64(cilk.Cycles),
		100*float64(cilk.L3Misses-cabRep.L3Misses)/float64(cilk.L3Misses))
}

// heatProgram builds the paper's Fig. 1 task structure: per timestep, a
// recursive row division down to 32-row leaves that do the actual stencil
// work, annotating their memory traffic for the cache model.
func heatProgram(grid, next []float64, rows, cols, steps int) cab.TaskFunc {
	const base = 4096
	rowBytes := int64(cols) * 8
	rowAddr := func(buf int, r int) uint64 {
		return uint64(base + buf*rows*cols*8 + r*cols*8)
	}
	var sweep func(src, dst []float64, sb, db, lo, hi int) cab.TaskFunc
	sweep = func(src, dst []float64, sb, db, lo, hi int) cab.TaskFunc {
		return func(t cab.Task) {
			if hi-lo <= 32 {
				for r := lo; r < hi; r++ {
					t.Load(rowAddr(sb, r-1), rowBytes)
					t.Load(rowAddr(sb, r), rowBytes)
					t.Load(rowAddr(sb, r+1), rowBytes)
					t.Compute(int64(cols) * 4)
					row, up, down := r*cols, (r-1)*cols, (r+1)*cols
					for c := 1; c < cols-1; c++ {
						dst[row+c] = 0.25 * (src[up+c] + src[down+c] + src[row+c-1] + src[row+c+1])
					}
					t.Store(rowAddr(db, r), rowBytes)
				}
				return
			}
			mid := (lo + hi) / 2
			m := t.Squads()
			hint := func(l, h int) int { return ((l + h) / 2) * m / rows }
			t.SpawnHint(hint(lo, mid), sweep(src, dst, sb, db, lo, mid))
			t.SpawnHint(hint(mid, hi), sweep(src, dst, sb, db, mid, hi))
			t.Sync()
		}
	}
	return func(t cab.Task) {
		src, dst, sb, db := grid, next, 0, 1
		for s := 0; s < steps; s++ {
			t.Spawn(sweep(src, dst, sb, db, 1, rows-1))
			t.Sync()
			src, dst, sb, db = dst, src, db, sb
		}
	}
}
