// N-queens: a CPU-bound program on the real CAB runtime.
//
// CPU-bound applications gain nothing from cache-aware placement, so the
// paper runs them with BL = 0, where CAB degenerates to traditional
// task-stealing (Fig. 8 measures the leftover frame-bookkeeping overhead
// at 1-2%). This example counts N-queens solutions with task parallelism
// and reports the scheduler's event counters.
//
//	go run ./examples/nqueens [-n 12]
package main

import (
	"flag"
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"cab"
)

func main() {
	n := flag.Int("n", 12, "board size")
	flag.Parse()

	sched, err := cab.New(cab.Config{
		Machine:       cab.DetectMachine(),
		BoundaryLevel: 0, // CPU-bound: schedule as traditional task-stealing
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sched.Close()

	var solutions atomic.Int64
	start := time.Now()
	if err := sched.Run(place(*n, nil, &solutions)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("queens(%d): %d solutions in %v\n", *n, solutions.Load(), time.Since(start))
	st := sched.Stats()
	fmt.Printf("spawns=%d steals=%d helps=%d\n", st.Spawns, st.StealsIntra, st.Helps)
}

// place spawns one task per safe queen placement for the first rows, then
// finishes each subtree serially.
func place(n int, rows []int8, out *atomic.Int64) cab.TaskFunc {
	return func(t cab.Task) {
		row := len(rows)
		if row >= 3 || row == n {
			out.Add(countSerial(n, append([]int8(nil), rows...)))
			return
		}
		for col := 0; col < n; col++ {
			if safe(rows, row, col) {
				child := make([]int8, row+1)
				copy(child, rows)
				child[row] = int8(col)
				t.Spawn(place(n, child, out))
			}
		}
		t.Sync()
	}
}

func countSerial(n int, rows []int8) int64 {
	row := len(rows)
	if row == n {
		return 1
	}
	var total int64
	rows = append(rows, 0)
	for col := 0; col < n; col++ {
		if safe(rows[:row], row, col) {
			rows[row] = int8(col)
			total += countSerial(n, rows)
		}
	}
	return total
}

func safe(rows []int8, row, col int) bool {
	for r, c := range rows {
		d := row - r
		if int(c) == col || int(c) == col-d || int(c) == col+d {
			return false
		}
	}
	return true
}
