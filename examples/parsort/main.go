// Parsort: the data-parallel API (ParallelFor + Reduce) end to end.
//
// Where examples/quickstart expresses parallelism as a recursive task
// structure, this program uses the flat data-parallel layer: ParallelFor
// tiles an index range into cache-sized grains behind one call, and
// Reduce tree-combines per-tile partial results. The demo normalizes a
// key array in parallel, checks the result with a parallel reduction,
// then runs the full sample sort from internal workloads exposed here by
// hand: histogram, scatter and per-bucket sort, all as parallel loops
// over disjoint index ranges.
//
//	go run ./examples/parsort [-n 1048576]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"slices"
	"sort"
	"time"

	"cab"
)

func main() {
	n := flag.Int("n", 1<<20, "keys to sort")
	flag.Parse()

	sched, err := cab.New(cab.Config{
		Machine:  cab.DetectMachine(),
		DataSize: int64(*n) * 8, // Sd: bytes the loops tile over
		Branch:   2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sched.Close()
	ctx := context.Background()
	fmt.Printf("scheduler ready: BL = %d\n", sched.BoundaryLevel())

	// Deterministic pseudo-random keys.
	data := make([]int64, *n)
	state := uint64(0x9e3779b97f4a7c15)
	for i := range data {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		data[i] = int64(state % 1_000_000)
	}

	// 1. ParallelFor: clamp every key into [0, 500_000) — an elementwise
	// pass whose grain the scheduler derives from the machine's cache
	// geometry (override with cab.WithGrain if you know better).
	start := time.Now()
	if err := sched.ParallelFor(ctx, 0, *n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if data[i] >= 500_000 {
				data[i] -= 500_000
			}
		}
	}, cab.WithElemBytes(8)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ParallelFor over %d keys: %v\n", *n, time.Since(start))

	// 2. Reduce: parallel sum with a tree combine, for the checksum the
	// sort must preserve.
	start = time.Now()
	sum, err := cab.Reduce(sched, ctx, 0, *n,
		func(lo, hi int) int64 {
			var s int64
			for i := lo; i < hi; i++ {
				s += data[i]
			}
			return s
		},
		func(a, b int64) int64 { return a + b },
		cab.WithElemBytes(8))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Reduce checksum: %d (%v)\n", sum, time.Since(start))

	// 3. Bucket sort built from parallel loops: histogram the keys into
	// buckets (one loop over fixed blocks, disjoint count rows), prefix
	// serially, scatter (disjoint cursors), then sort each bucket as its
	// own leaf of a final loop — the scheme internal/workloads' sample
	// sort uses, written out flat.
	const buckets = 64
	const blocks = 64
	start = time.Now()
	out := make([]int64, *n)
	counts := make([]int32, blocks*buckets)
	cursors := make([]int, blocks*buckets)
	bs := (*n + blocks - 1) / blocks
	blockRange := func(b int) (int, int) {
		lo := b * bs
		hi := min(lo+bs, *n)
		return lo, hi
	}
	bucketOf := func(v int64) int { return int(v * buckets / 500_000) }

	if err := sched.ParallelFor(ctx, 0, blocks, func(b, be int) {
		for ; b < be; b++ {
			lo, hi := blockRange(b)
			row := counts[b*buckets : (b+1)*buckets]
			for i := lo; i < hi; i++ {
				row[bucketOf(data[i])]++
			}
		}
	}, cab.WithGrain(1)); err != nil {
		log.Fatal(err)
	}
	pos := 0
	for k := 0; k < buckets; k++ {
		for b := 0; b < blocks; b++ {
			cursors[b*buckets+k] = pos
			pos += int(counts[b*buckets+k])
		}
	}
	if err := sched.ParallelFor(ctx, 0, blocks, func(b, be int) {
		for ; b < be; b++ {
			lo, hi := blockRange(b)
			cur := cursors[b*buckets : (b+1)*buckets]
			for i := lo; i < hi; i++ {
				k := bucketOf(data[i])
				out[cur[k]] = data[i]
				cur[k]++
			}
		}
	}, cab.WithGrain(1)); err != nil {
		log.Fatal(err)
	}
	// Bucket k of the last block ends where bucket k+1 of block 0 starts.
	bstart := make([]int, buckets+1)
	for k := 1; k < buckets; k++ {
		bstart[k] = cursors[(blocks-1)*buckets+k-1]
	}
	bstart[buckets] = *n
	if err := sched.ParallelFor(ctx, 0, buckets, func(k, ke int) {
		for ; k < ke; k++ {
			slices.Sort(out[bstart[k]:bstart[k+1]])
		}
	}, cab.WithGrain(1)); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	if !sort.SliceIsSorted(out, func(i, j int) bool { return out[i] < out[j] }) {
		log.Fatal("result is not sorted")
	}
	var check int64
	for _, v := range out {
		check += v
	}
	if check != sum {
		log.Fatalf("checksum drifted: %d != %d", check, sum)
	}
	st := sched.Stats()
	fmt.Printf("bucket-sorted %d keys in %v (verified against the Reduce checksum)\n", *n, elapsed)
	fmt.Printf("spawns=%d (inter=%d) steals intra/inter=%d/%d\n",
		st.Spawns, st.InterSpawns, st.StealsIntra, st.StealsInter)
}
