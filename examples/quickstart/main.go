// Quickstart: parallel mergesort on the CAB runtime through the public API.
//
// It shows the three things a CAB program provides: a recursive task
// structure (Spawn/Sync), the partitioning parameters Sd and B for Eq. 4,
// and — optionally — data-placement hints (SpawnHint) for the inter-socket
// tier.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"cab"
)

const n = 1 << 20

func main() {
	sched, err := cab.New(cab.Config{
		Machine:  cab.DetectMachine(),
		DataSize: n * 8, // Sd: bytes the recursion divides
		Branch:   2,     // B: two-way splits
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sched.Close()
	fmt.Printf("scheduler ready: boundary level BL = %d\n", sched.BoundaryLevel())

	data := make([]int64, n)
	state := uint64(1)
	for i := range data {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		data[i] = int64(state % 1_000_000)
	}
	scratch := make([]int64, n)
	copy(scratch, data)

	start := time.Now()
	if err := sched.Run(sortTask(scratch, data, 0, n)); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	if !sort.SliceIsSorted(data, func(i, j int) bool { return data[i] < data[j] }) {
		log.Fatal("result is not sorted")
	}
	st := sched.Stats()
	fmt.Printf("sorted %d keys in %v\n", n, elapsed)
	fmt.Printf("spawns=%d (inter=%d) steals intra/inter=%d/%d helps=%d\n",
		st.Spawns, st.InterSpawns, st.StealsIntra, st.StealsInter, st.Helps)
}

// sortTask sorts src[lo:hi) into dst[lo:hi), using the buffers in
// alternation. Placement hints map subranges onto squads proportionally,
// the paper's inter_spawn idiom.
func sortTask(src, dst []int64, lo, hi int) cab.TaskFunc {
	return func(t cab.Task) {
		if hi-lo <= 8192 {
			s := src[lo:hi]
			sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
			copy(dst[lo:hi], src[lo:hi])
			return
		}
		mid := lo + (hi-lo)/2
		m := t.Squads()
		hint := func(l, h int) int { return (l + h) / 2 * m / len(src) }
		t.SpawnHint(hint(lo, mid), sortTask(dst, src, lo, mid))
		t.SpawnHint(hint(mid, hi), sortTask(dst, src, mid, hi))
		t.Sync()
		merge(src[lo:mid], src[mid:hi], dst[lo:hi])
	}
}

func merge(a, b, out []int64) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out[k] = a[i]
			i++
		} else {
			out[k] = b[j]
			j++
		}
		k++
	}
	copy(out[k:], a[i:])
	copy(out[k+len(a)-i:], b[j:])
}
