// Schedview: visualize how CAB and random stealing schedule the same
// program on the simulated machine.
//
// It runs an iterative stencil under both schedulers, writes one Chrome
// trace-viewer JSON per scheduler (open them in chrome://tracing or
// https://ui.perfetto.dev to see the per-core Gantt charts), and prints a
// summary. Under CAB the lanes show each socket's cores working one
// contiguous region; under random stealing the same region hops sockets.
//
//	go run ./examples/schedview [-out /tmp]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"cab"
	"cab/sim"
)

func main() {
	out := flag.String("out", ".", "directory for the trace files")
	flag.Parse()

	const rows, cols, steps = 512, 512, 4
	for _, kind := range []sim.SchedulerKind{sim.Cilk, sim.CAB} {
		path := filepath.Join(*out, fmt.Sprintf("schedview_%s.json", kind))
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := sim.Run(sim.Config{
			Scheduler:     kind,
			BoundaryLevel: -1,
			DataSize:      rows * cols * 8,
			Branch:        2,
			Seed:          42,
			Trace:         f,
		}, stencil(rows, cols, steps))
		if err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5s BL=%d  %12d cycles  L3 misses %8d  steals %d/%d  -> %s\n",
			rep.Scheduler, rep.BL, rep.Cycles, rep.L3Misses,
			rep.StealsIntra, rep.StealsInter, path)
	}
	fmt.Println("\nopen the JSON files in chrome://tracing to compare the schedules")
}

func stencil(rows, cols, steps int) cab.TaskFunc {
	rowBytes := int64(cols) * 8
	addr := func(buf, r int) uint64 { return uint64(4096 + buf*rows*cols*8 + r*cols*8) }
	var sweep func(sb, db, lo, hi int) cab.TaskFunc
	sweep = func(sb, db, lo, hi int) cab.TaskFunc {
		return func(t cab.Task) {
			if hi-lo <= 32 {
				for r := lo; r < hi; r++ {
					t.Load(addr(sb, r-1), rowBytes)
					t.Load(addr(sb, r), rowBytes)
					t.Load(addr(sb, r+1), rowBytes)
					t.Compute(int64(cols) * 4)
					t.Store(addr(db, r), rowBytes)
				}
				return
			}
			mid := (lo + hi) / 2
			m := t.Squads()
			hint := func(l, h int) int { return ((l + h) / 2) * m / rows }
			t.SpawnHint(hint(lo, mid), sweep(sb, db, lo, mid))
			t.SpawnHint(hint(mid, hi), sweep(sb, db, mid, hi))
			t.Sync()
		}
	}
	return func(t cab.Task) {
		sb, db := 0, 1
		for s := 0; s < steps; s++ {
			t.Spawn(sweep(sb, db, 1, rows-1))
			t.Sync()
			sb, db = db, sb
		}
	}
}
