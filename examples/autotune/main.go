// Autotune: watch Eq. 4 pick the boundary level (the paper's Fig. 5 in
// miniature).
//
// The program sweeps every possible BL for an iterative stencil on the
// simulated machine, prints the measured time of each, and marks the level
// the automatic partitioning model would choose. Too-small BL values
// starve sockets (down to one working squad at BL = 1); too-large values
// leave squad workers idle; Eq. 4 lands on the sweet spot without
// measuring anything.
//
//	go run ./examples/autotune [-mb 8]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"cab"
	"cab/sim"
)

func main() {
	mb := flag.Int("mb", 8, "input size in MiB")
	flag.Parse()

	rows := 1024
	cols := (*mb << 20) / 8 / rows
	if cols < 64 {
		cols = 64
	}
	sd := int64(rows) * int64(cols) * 8

	machine := cab.Opteron8380()
	autoBL, err := cab.BoundaryLevel(machine, 2, sd)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("input %d MiB on 4x6MB sockets: Eq. 4 selects BL = %d\n\n", *mb, autoBL)

	cilk, err := sim.Run(sim.Config{Scheduler: sim.Cilk, Seed: 7}, stencil(rows, cols))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-8s %14d cycles  (baseline)\n", "cilk", cilk.Cycles)

	best, bestBL := int64(1<<62), 0
	for bl := 1; bl <= 6; bl++ {
		rep, err := sim.Run(sim.Config{
			Scheduler:     sim.CAB,
			BoundaryLevel: bl,
			Seed:          7,
		}, stencil(rows, cols))
		if err != nil {
			log.Fatal(err)
		}
		marks := []string{}
		if bl == autoBL {
			marks = append(marks, "<- Eq. 4")
		}
		if rep.Cycles < best {
			best, bestBL = rep.Cycles, bl
		}
		fmt.Printf("cab BL=%d %14d cycles  L3 misses %9d %s\n",
			bl, rep.Cycles, rep.L3Misses, strings.Join(marks, " "))
	}
	fmt.Printf("\nempirical best: BL = %d; automatic choice: BL = %d\n", bestBL, autoBL)
}

// stencil is an iterative row-divided kernel with annotated traffic.
func stencil(rows, cols int) cab.TaskFunc {
	rowBytes := int64(cols) * 8
	addr := func(buf, r int) uint64 { return uint64(4096 + buf*rows*cols*8 + r*cols*8) }
	var sweep func(sb, db, lo, hi int) cab.TaskFunc
	sweep = func(sb, db, lo, hi int) cab.TaskFunc {
		return func(t cab.Task) {
			if hi-lo <= 32 {
				for r := lo; r < hi; r++ {
					t.Load(addr(sb, r-1), rowBytes)
					t.Load(addr(sb, r), rowBytes)
					t.Load(addr(sb, r+1), rowBytes)
					t.Compute(int64(cols) * 4)
					t.Store(addr(db, r), rowBytes)
				}
				return
			}
			mid := (lo + hi) / 2
			m := t.Squads()
			hint := func(l, h int) int { return ((l + h) / 2) * m / rows }
			t.SpawnHint(hint(lo, mid), sweep(sb, db, lo, mid))
			t.SpawnHint(hint(mid, hi), sweep(sb, db, mid, hi))
			t.Sync()
		}
	}
	return func(t cab.Task) {
		sb, db := 0, 1
		for s := 0; s < 10; s++ {
			t.Spawn(sweep(sb, db, 1, rows-1))
			t.Sync()
			sb, db = db, sb
		}
	}
}
